#include "zns/zns_device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.h"
#include "obs/ledger.h"
#include "sim/event_loop.h"

namespace raizn {

ZnsDevice::ZnsDevice(EventLoop *loop, ZnsDeviceConfig config)
    : loop_(loop), config_(std::move(config))
{
    if (config_.zone_capacity == 0)
        config_.zone_capacity = config_.zone_size;
    assert(config_.zone_capacity <= config_.zone_size);
    assert(config_.nzones > 0);

    geom_.zoned = true;
    geom_.zone_size = config_.zone_size;
    geom_.zone_capacity = config_.zone_capacity;
    geom_.nzones = config_.nzones;
    geom_.nsectors = config_.zone_size * config_.nzones;
    geom_.max_open_zones = config_.max_open_zones;
    geom_.max_active_zones = config_.max_active_zones;
    geom_.max_append_sectors = config_.max_append_sectors;
    geom_.atomic_write_sectors = config_.atomic_write_sectors;

    timing_ = std::make_unique<TimingModel>(*loop_, config_.timing);
    timing_->set_busy_accumulator(&stats_.busy_ns);
    zones_.resize(config_.nzones);
    for (uint32_t i = 0; i < config_.nzones; ++i) {
        zones_[i].wp = static_cast<uint64_t>(i) * config_.zone_size;
        zones_[i].durable_wp = zones_[i].wp;
    }
}

uint64_t
ZnsDevice::zone_start(const Zone &z) const
{
    size_t idx = static_cast<size_t>(&z - zones_.data());
    return idx * config_.zone_size;
}

uint64_t
ZnsDevice::zone_cap_end(const Zone &z) const
{
    return zone_start(z) + config_.zone_capacity;
}

ZnsDevice::Zone &
ZnsDevice::zone_at(uint64_t lba)
{
    return zones_[lba / config_.zone_size];
}

Result<ZoneInfo>
ZnsDevice::zone_info(uint32_t zone_index) const
{
    if (zone_index >= config_.nzones)
        return Status(StatusCode::kInvalidArgument, "zone out of range");
    const Zone &z = zones_[zone_index];
    ZoneInfo info;
    info.start = static_cast<uint64_t>(zone_index) * config_.zone_size;
    info.capacity = config_.zone_capacity;
    info.wp = z.wp;
    info.state = z.state;
    return info;
}

void
ZnsDevice::complete(Tick when, IoCallback cb, IoResult result,
                    Apply apply, ZnsTraceEvent tev)
{
    result.submit_tick = loop_->now();
    result.complete_tick = when;
    uint64_t epoch = epoch_;
    loop_->schedule_at(
        when, "zns.complete",
        [this, epoch, cb = std::move(cb), apply = std::move(apply),
         result = std::move(result), tev]() mutable {
            // Completions from before a power cut never reach the host,
            // and their durability/state effects never land.
            if (epoch != epoch_)
                return;
            if (apply)
                apply();
            if (trace_) {
                tev.dev = this;
                tev.tick = loop_->now();
                trace_(tev);
            }
            cb(std::move(result));
        });
}

Status
ZnsDevice::validate_write(const Zone &z, uint64_t slba,
                          uint32_t nsectors) const
{
    switch (z.state) {
      case ZoneState::kFull:
        return Status(StatusCode::kNoSpace, "zone full");
      case ZoneState::kReadOnly:
        return Status(StatusCode::kReadOnly, "zone read-only");
      case ZoneState::kOffline:
        return Status(StatusCode::kOffline, "zone offline");
      default:
        break;
    }
    if (slba != z.wp) {
        return Status(StatusCode::kWritePointerMismatch,
                      strprintf("write at %llu but wp is %llu",
                                (unsigned long long)slba,
                                (unsigned long long)z.wp));
    }
    if (slba + nsectors > zone_cap_end(z))
        return Status(StatusCode::kZoneBoundary, "write crosses capacity");
    return Status::ok();
}

void
ZnsDevice::transition_open(Zone &z, bool explicit_open)
{
    if (is_open(z.state)) {
        if (explicit_open)
            z.state = ZoneState::kExplicitOpen;
        return;
    }
    bool was_active = is_active(z.state);
    z.state =
        explicit_open ? ZoneState::kExplicitOpen : ZoneState::kImplicitOpen;
    open_count_++;
    if (!was_active)
        active_count_++;
}

Status
ZnsDevice::ensure_open_slot(Zone &z)
{
    if (is_open(z.state))
        return Status::ok();
    if (!is_active(z.state) && active_count_ >= config_.max_active_zones) {
        return Status(StatusCode::kTooManyOpenZones,
                      "active zone limit reached");
    }
    if (open_count_ >= config_.max_open_zones) {
        // Auto-close the least recently used implicitly-open zone, as
        // real controllers do to admit a new implicit open.
        Zone *victim = nullptr;
        for (Zone &cand : zones_) {
            if (cand.state != ZoneState::kImplicitOpen)
                continue;
            if (!victim || cand.last_use < victim->last_use)
                victim = &cand;
        }
        if (!victim) {
            return Status(StatusCode::kTooManyOpenZones,
                          "open zone limit reached (all explicit)");
        }
        close_zone(*victim, ZoneState::kClosed);
    }
    return Status::ok();
}

void
ZnsDevice::close_zone(Zone &z, ZoneState target)
{
    assert(is_open(z.state));
    open_count_--;
    z.state = target;
    if (!is_active(target))
        active_count_--;
}

void
ZnsDevice::store_data(Zone &z, uint64_t slba, const IoRequest &req)
{
    if (config_.data_mode != DataMode::kStore)
        return;
    if (z.data.empty())
        z.data.assign(config_.zone_capacity * kSectorSize, 0);
    uint64_t off = (slba - zone_start(z)) * kSectorSize;
    size_t len = static_cast<size_t>(req.nsectors) * kSectorSize;
    if (!req.data.empty()) {
        assert(req.data.size() == len);
        std::memcpy(z.data.data() + off, req.data.data(), len);
    } else {
        std::memset(z.data.data() + off, 0, len);
    }
}

std::vector<uint8_t>
ZnsDevice::load_data(uint64_t slba, uint32_t nsectors) const
{
    std::vector<uint8_t> out;
    if (config_.data_mode != DataMode::kStore)
        return out;
    out.assign(static_cast<size_t>(nsectors) * kSectorSize, 0);
    uint64_t lba = slba;
    uint32_t left = nsectors;
    uint8_t *dst = out.data();
    while (left > 0) {
        const Zone &z = zones_[lba / config_.zone_size];
        uint64_t zstart = lba / config_.zone_size * config_.zone_size;
        uint64_t off_in_zone = lba - zstart;
        uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
            left, config_.zone_size - off_in_zone));
        // Sectors beyond capacity or unwritten read as zeros.
        if (!z.data.empty() && off_in_zone < config_.zone_capacity) {
            uint32_t avail = static_cast<uint32_t>(std::min<uint64_t>(
                chunk, config_.zone_capacity - off_in_zone));
            std::memcpy(dst, z.data.data() + off_in_zone * kSectorSize,
                        static_cast<size_t>(avail) * kSectorSize);
        }
        dst += static_cast<size_t>(chunk) * kSectorSize;
        lba += chunk;
        left -= chunk;
    }
    return out;
}

void
ZnsDevice::make_durable_upto(Zone &z, uint64_t lba)
{
    z.durable_wp = std::max(z.durable_wp, std::min(lba, z.wp));
}

std::vector<uint64_t>
ZnsDevice::snapshot_wps() const
{
    std::vector<uint64_t> wps;
    wps.reserve(zones_.size());
    for (const Zone &z : zones_)
        wps.push_back(z.wp);
    return wps;
}

void
ZnsDevice::apply_flush_snapshot(const std::vector<uint64_t> &wps)
{
    // Persist everything submitted before the flush; clamp to the
    // current wp (a zone reset may have intervened).
    for (size_t i = 0; i < zones_.size(); ++i)
        make_durable_upto(zones_[i], wps[i]);
}

void
ZnsDevice::do_reset(Zone &z)
{
    if (is_open(z.state))
        close_zone(z, ZoneState::kClosed);
    if (is_active(z.state))
        active_count_--;
    z.state = ZoneState::kEmpty;
    z.wp = zone_start(z);
    z.durable_wp = z.wp;
    z.data.clear();
}

void
ZnsDevice::submit(IoRequest req, IoCallback cb)
{
    assert(cb);
    ZnsTraceEvent tev;
    tev.op = req.op;
    tev.slba = req.slba;
    tev.lba = req.slba;
    tev.nsectors = req.nsectors;
    tev.fua = req.fua;
    tev.preflush = req.preflush;
    if (failed_) {
        stats_.errors++;
        IoResult r;
        r.status = Status(StatusCode::kOffline, "device failed");
        complete(loop_->now() + kNsPerUs, std::move(cb), std::move(r),
                 nullptr, tev);
        return;
    }

    IoResult result;
    Tick when = loop_->now();
    Apply apply;

    // PREFLUSH: persist the whole cache before the command proper.
    // The durability lands at completion (a crash in between loses it).
    if (req.preflush && req.op != IoOp::kFlush) {
        auto snapshot = snapshot_wps();
        apply = [this, snapshot] { apply_flush_snapshot(snapshot); };
        when = std::max(when, timing_->flush_done());
    }

    switch (req.op) {
      case IoOp::kRead: {
        if (req.slba + req.nsectors > geom_.nsectors || req.nsectors == 0) {
            result.status =
                Status(StatusCode::kInvalidArgument, "read out of range");
            break;
        }
        stats_.reads++;
        stats_.sectors_read += req.nsectors;
        result.lba = req.slba;
        result.data = load_data(req.slba, req.nsectors);
        when = std::max(when, timing_->read_done(req.nsectors));
        break;
      }
      case IoOp::kWrite:
      case IoOp::kAppend: {
        if (req.nsectors == 0 ||
            req.slba + req.nsectors > geom_.nsectors) {
            result.status =
                Status(StatusCode::kInvalidArgument, "write out of range");
            break;
        }
        // Payload must be sector-aligned and agree with nsectors
        // (empty payloads are timing-only writes and always legal).
        if (!req.data.empty() &&
            (req.data.size() % kSectorSize != 0 ||
             req.data.size() / kSectorSize != req.nsectors)) {
            result.status = Status(StatusCode::kInvalidArgument,
                                   "payload size disagrees with nsectors");
            break;
        }
        Zone &z = zone_at(req.slba);
        uint64_t slba = req.slba;
        if (req.op == IoOp::kAppend) {
            if (req.slba != zone_start(z)) {
                result.status = Status(StatusCode::kInvalidArgument,
                                       "append slba must be zone start");
                break;
            }
            if (req.nsectors > config_.max_append_sectors) {
                result.status = Status(StatusCode::kInvalidArgument,
                                       "append exceeds limit");
                break;
            }
            slba = z.wp;
        }
        Status st = validate_write(z, slba, req.nsectors);
        if (!st) {
            result.status = st;
            break;
        }
        st = ensure_open_slot(z);
        if (!st) {
            result.status = st;
            break;
        }
        transition_open(z, false);
        z.last_use = ++use_clock_;
        store_data(z, slba, req);
        z.wp = slba + req.nsectors;
        if (z.wp == zone_cap_end(z))
            close_zone(z, ZoneState::kFull);
        stats_.writes += (req.op == IoOp::kWrite);
        stats_.appends += (req.op == IoOp::kAppend);
        stats_.sectors_written += req.nsectors;
        result.lba = slba;
        when = std::max(when, timing_->write_done(req.nsectors));
        if (req.fua) {
            // FUA write becomes durable at completion; NAND programs in
            // zone order, so the zone prefix is durable too.
            uint64_t upto = slba + req.nsectors;
            Zone *zp = &z;
            Apply prev = std::move(apply);
            apply = [this, zp, upto, prev = std::move(prev)] {
                if (prev)
                    prev();
                make_durable_upto(*zp, upto);
            };
        }
        break;
      }
      case IoOp::kFlush: {
        stats_.flushes++;
        auto snapshot = snapshot_wps();
        apply = [this, snapshot] { apply_flush_snapshot(snapshot); };
        when = std::max(when, timing_->flush_done());
        break;
      }
      case IoOp::kZoneReset: {
        Zone &z = zone_at(req.slba);
        if (req.slba != zone_start(z)) {
            result.status = Status(StatusCode::kInvalidArgument,
                                   "reset slba must be zone start");
            break;
        }
        if (z.state == ZoneState::kOffline ||
            z.state == ZoneState::kReadOnly) {
            result.status = Status(StatusCode::kOffline, "zone dead");
            break;
        }
        stats_.zone_resets++;
        {
            Zone *zp = &z;
            apply = [this, zp] { do_reset(*zp); };
        }
        when = std::max(when, timing_->reset_done());
        break;
      }
      case IoOp::kZoneFinish: {
        Zone &z = zone_at(req.slba);
        if (req.slba != zone_start(z)) {
            result.status = Status(StatusCode::kInvalidArgument,
                                   "finish slba must be zone start");
            break;
        }
        if (z.state == ZoneState::kFull)
            break; // idempotent
        {
            Zone *zp = &z;
            apply = [this, zp] {
                if (zp->state == ZoneState::kFull)
                    return;
                if (is_open(zp->state))
                    close_zone(*zp, ZoneState::kClosed);
                if (is_active(zp->state))
                    active_count_--;
                zp->state = ZoneState::kFull;
                zp->wp = zone_cap_end(*zp);
                zp->durable_wp = zp->wp; // durable once completed
            };
        }
        when = std::max(when, timing_->finish_done());
        break;
      }
      case IoOp::kZoneOpen: {
        Zone &z = zone_at(req.slba);
        Status st = ensure_open_slot(z);
        if (!st) {
            result.status = st;
            break;
        }
        if (z.state == ZoneState::kFull) {
            result.status = Status(StatusCode::kNoSpace, "zone full");
            break;
        }
        transition_open(z, true);
        z.last_use = ++use_clock_;
        when += kNsPerUs;
        break;
      }
      case IoOp::kZoneClose: {
        Zone &z = zone_at(req.slba);
        if (is_open(z.state))
            close_zone(z, ZoneState::kClosed);
        when += kNsPerUs;
        break;
      }
    }

    if (!result.status.is_ok()) {
        stats_.errors++;
        apply = nullptr; // failed commands have no effects
    } else if (ledger_ != nullptr) {
        ledger_->record(ledger_dev_, req.op, req.cause, req.slba,
                        req.nsectors);
    }
    tev.lba = result.lba;
    tev.ok = result.status.is_ok();
    complete(std::max(when, loop_->now() + 1), std::move(cb),
             std::move(result), std::move(apply), tev);
}

void
ZnsDevice::power_cut(const PowerLossSpec &spec)
{
    epoch_++;
    Rng rng(spec.seed ^ 0xdeadbeef);
    for (Zone &z : zones_) {
        if (z.state == ZoneState::kReadOnly ||
            z.state == ZoneState::kOffline) {
            continue;
        }
        uint64_t survive = z.durable_wp;
        switch (spec.policy) {
          case PowerLossSpec::Policy::kDropCache:
            survive = z.durable_wp;
            break;
          case PowerLossSpec::Policy::kKeepAll:
            survive = z.wp;
            break;
          case PowerLossSpec::Policy::kRandom: {
            uint64_t cached = z.wp - z.durable_wp;
            if (cached > 0) {
                // Survive a prefix of the cache, at atomic granularity.
                uint64_t atoms =
                    cached / config_.atomic_write_sectors + 1;
                uint64_t keep = rng.next_below(atoms + 1) *
                    config_.atomic_write_sectors;
                survive = std::min(z.wp, z.durable_wp + keep);
            }
            break;
          }
        }
        // Roll the zone back to the surviving write pointer.
        if (config_.data_mode == DataMode::kStore && !z.data.empty()) {
            uint64_t off = (survive - zone_start(z)) * kSectorSize;
            std::fill(z.data.begin() + static_cast<ptrdiff_t>(off),
                      z.data.end(), 0);
        }
        z.wp = survive;
        z.durable_wp = survive;
        // Post-boot states: open zones become closed (no opens survive).
        if (is_open(z.state))
            close_zone(z, ZoneState::kClosed);
        if (z.state == ZoneState::kClosed && z.wp == zone_start(z)) {
            z.state = ZoneState::kEmpty;
            active_count_--;
        }
        if (z.state == ZoneState::kFull && z.wp < zone_cap_end(z)) {
            // A finish or final write did not persist.
            z.state = z.wp == zone_start(z) ? ZoneState::kEmpty
                                            : ZoneState::kClosed;
            if (z.state == ZoneState::kClosed)
                active_count_++;
        }
    }
}

void
ZnsDevice::reattach(EventLoop *loop)
{
    loop_ = loop;
    timing_ = std::make_unique<TimingModel>(*loop_, config_.timing);
    timing_->set_busy_accumulator(&stats_.busy_ns);
}

void
ZnsDevice::corrupt(uint64_t lba, uint32_t nsectors, uint64_t seed)
{
    if (config_.data_mode != DataMode::kStore)
        return;
    Rng rng(seed ^ 0xc0441u);
    for (uint32_t i = 0; i < nsectors; ++i) {
        uint64_t cur = lba + i;
        if (cur >= geom_.nsectors)
            return;
        Zone &z = zone_at(cur);
        uint64_t off_in_zone = cur - zone_start(z);
        if (z.data.empty() || off_in_zone >= config_.zone_capacity)
            continue;
        uint8_t *p = z.data.data() + off_in_zone * kSectorSize;
        for (size_t b = 0; b < kSectorSize; b += 64)
            p[b] ^= static_cast<uint8_t>(rng.next() | 1);
    }
}

ZnsDevice::ZoneCensus
ZnsDevice::zone_census() const
{
    ZoneCensus c;
    for (const Zone &z : zones_) {
        switch (z.state) {
          case ZoneState::kEmpty: c.empty++; break;
          case ZoneState::kImplicitOpen:
          case ZoneState::kExplicitOpen: c.open++; break;
          case ZoneState::kClosed: c.closed++; break;
          case ZoneState::kFull: c.full++; break;
          default: c.other++; break;
        }
    }
    return c;
}

void
ZnsDevice::replace()
{
    failed_ = false;
    epoch_++;
    open_count_ = 0;
    active_count_ = 0;
    for (uint32_t i = 0; i < config_.nzones; ++i) {
        Zone &z = zones_[i];
        z.state = ZoneState::kEmpty;
        z.wp = static_cast<uint64_t>(i) * config_.zone_size;
        z.durable_wp = z.wp;
        z.data.clear();
        z.last_use = 0;
    }
    stats_ = DeviceStats{};
    // Counters restarted from zero on a factory-fresh device: move the
    // ledger's audit baseline along or every delta check would trip.
    if (ledger_ != nullptr)
        ledger_->rebind_device(ledger_dev_, this);
}

} // namespace raizn
