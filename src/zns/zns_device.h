/**
 * @file
 * Emulated NVMe ZNS SSD. Implements the zone state machine, sequential
 * write rule, zone append, open/active zone limits, a volatile write
 * cache with FUA/PREFLUSH/flush semantics, deterministic service timing,
 * and power-loss / device-failure injection.
 *
 * Persistence model: zone writes are sequential, so the volatile cache
 * per zone is exactly the LBA range [durable_wp, wp). On power loss the
 * surviving write pointer lands in that range, at atomic-write
 * granularity, chosen by the fault-injection policy.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "zns/block_device.h"
#include "zns/timing_model.h"

namespace raizn {

/// Construction parameters for one emulated ZNS device.
struct ZnsDeviceConfig {
    uint32_t nzones = 32;
    uint64_t zone_size = 4096; ///< sectors per zone (LBA span), 16 MiB
    /// Writable sectors per zone; 0 means equal to zone_size. The
    /// paper's device has capacity (1077 MiB) below its zone size.
    uint64_t zone_capacity = 0;
    uint32_t max_open_zones = 14; ///< paper's device limit (§2.1)
    uint32_t max_active_zones = 14;
    uint32_t max_append_sectors = 256;
    uint32_t atomic_write_sectors = 16; ///< 64 KiB device-atomic writes
    DataMode data_mode = DataMode::kStore;
    TimingParams timing = TimingParams::zns();
    std::string name = "znsdev";
};

/// How much volatile-cache data survives a power cut.
struct PowerLossSpec {
    enum class Policy {
        kDropCache, ///< only durable data survives (adversarial)
        kKeepAll, ///< everything submitted survives (clean shutdown)
        kRandom, ///< per-zone random survival at atomic granularity
    };
    Policy policy = Policy::kDropCache;
    uint64_t seed = 1;
};

class ZnsDevice;

/**
 * One device command completion as observed by a trace hook. The
 * crash-point explorer counts these events to enumerate power-cut
 * injection boundaries and hashes them to verify deterministic replay.
 */
struct ZnsTraceEvent {
    const ZnsDevice *dev = nullptr;
    IoOp op = IoOp::kRead;
    uint64_t slba = 0;
    uint64_t lba = 0; ///< placement LBA (differs from slba for appends)
    uint32_t nsectors = 0;
    bool fua = false;
    bool preflush = false;
    bool ok = false;
    Tick tick = 0;
};

class ZnsDevice : public BlockDevice
{
  public:
    using TraceFn = std::function<void(const ZnsTraceEvent &)>;

    ZnsDevice(EventLoop *loop, ZnsDeviceConfig config);

    const DeviceGeometry &geometry() const override { return geom_; }
    const DeviceStats &stats() const override { return stats_; }
    DataMode data_mode() const override { return config_.data_mode; }
    const std::string &name() const { return config_.name; }

    void submit(IoRequest req, IoCallback cb) override;
    Result<ZoneInfo> zone_info(uint32_t zone_index) const override;

    bool failed() const override { return failed_; }
    void fail() override { failed_ = true; }

    /**
     * Simulates power loss: applies the survival policy to every zone's
     * volatile cache and invalidates outstanding completions. The host
     * must treat the device as rebooted afterwards.
     */
    void power_cut(const PowerLossSpec &spec);

    /**
     * Binds the device to a (possibly new) event loop after power_cut,
     * resetting service-timing state. Durable contents are preserved.
     */
    void reattach(EventLoop *loop);

    /// Replaces the device with a factory-fresh one (rebuild target).
    void replace();

    /**
     * Test hook: silently corrupts `nsectors` of stored media starting
     * at `lba` (XORs bytes with a pattern derived from `seed`). Models
     * latent sector corruption; the device keeps serving the corrupted
     * bytes without error, which is what scrubbing exists to catch.
     * No-op in timing-only mode or on unwritten sectors.
     */
    void corrupt(uint64_t lba, uint32_t nsectors, uint64_t seed);

    /// Zone index containing `lba`.
    uint32_t zone_of(uint64_t lba) const
    {
        return static_cast<uint32_t>(lba / geom_.zone_size);
    }

    /// Count of zones currently in an open state.
    uint32_t open_zone_count() const { return open_count_; }
    uint32_t active_zone_count() const { return active_count_; }

    /// Point-in-time zone-state counts (timeline gauges).
    struct ZoneCensus {
        uint32_t empty = 0;
        uint32_t open = 0; ///< implicit + explicit
        uint32_t closed = 0;
        uint32_t full = 0;
        uint32_t other = 0; ///< read-only / offline
    };
    ZoneCensus zone_census() const;

    /**
     * Installs a completion trace hook (pass nullptr to remove). Fires
     * as a command completes — after its durability/state effects have
     * applied, immediately before the host callback — so a power cut
     * injected at the hook's boundary sees exactly the device state the
     * host was about to be told about. Completions invalidated by an
     * earlier power cut never fire the hook.
     */
    void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  private:
    /// State mutation applied at command completion (durability marks,
    /// resets, finishes). Runs only if no power cut intervened.
    using Apply = std::function<void()>;

    struct Zone {
        ZoneState state = ZoneState::kEmpty;
        uint64_t wp = 0; ///< absolute next-writable LBA (submit-time)
        uint64_t durable_wp = 0; ///< survives power loss
        uint64_t last_use = 0; ///< for implicit-open LRU eviction
        std::vector<uint8_t> data; ///< lazily allocated, capacity bytes
    };

    void complete(Tick when, IoCallback cb, IoResult result,
                  Apply apply = nullptr, ZnsTraceEvent tev = {});
    Status validate_write(const Zone &z, uint64_t slba,
                          uint32_t nsectors) const;
    void transition_open(Zone &z, bool explicit_open);
    Status ensure_open_slot(Zone &z);
    void close_zone(Zone &z, ZoneState target);
    void store_data(Zone &z, uint64_t slba, const IoRequest &req);
    std::vector<uint8_t> load_data(uint64_t slba, uint32_t nsectors) const;
    void make_durable_upto(Zone &z, uint64_t lba);
    std::vector<uint64_t> snapshot_wps() const;
    void apply_flush_snapshot(const std::vector<uint64_t> &wps);
    void do_reset(Zone &z);

    Zone &zone_at(uint64_t lba);
    uint64_t zone_start(const Zone &z) const;
    uint64_t zone_cap_end(const Zone &z) const;

    EventLoop *loop_;
    ZnsDeviceConfig config_;
    DeviceGeometry geom_;
    DeviceStats stats_;
    std::unique_ptr<TimingModel> timing_;
    std::vector<Zone> zones_;
    uint32_t open_count_ = 0;
    uint32_t active_count_ = 0;
    uint64_t use_clock_ = 0;
    uint64_t epoch_ = 0; ///< bumped on power_cut; stale completions drop
    bool failed_ = false;
    TraceFn trace_;
};

} // namespace raizn
