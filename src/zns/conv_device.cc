#include "zns/conv_device.h"

#include <cassert>
#include <cstring>

#include "common/logging.h"
#include "obs/ledger.h"
#include "sim/event_loop.h"

namespace raizn {

ConvDevice::ConvDevice(EventLoop *loop, ConvDeviceConfig config)
    : loop_(loop), config_(std::move(config))
{
    geom_.zoned = false;
    geom_.nsectors = config_.nsectors;
    geom_.atomic_write_sectors = 16;

    timing_ = std::make_unique<TimingModel>(*loop_, config_.timing);
    timing_->set_busy_accumulator(&stats_.busy_ns);
    FtlConfig fcfg;
    fcfg.user_pages = config_.nsectors;
    fcfg.op_ratio = config_.op_ratio;
    fcfg.pages_per_block = config_.pages_per_block;
    fcfg.gc_low_blocks = config_.gc_low_blocks;
    fcfg.gc_high_blocks = config_.gc_high_blocks;
    ftl_ = std::make_unique<Ftl>(fcfg);
}

void
ConvDevice::complete(Tick when, IoCallback cb, IoResult result)
{
    result.submit_tick = loop_->now();
    result.complete_tick = when;
    uint64_t epoch = epoch_;
    loop_->schedule_at(
        when, "conv.complete",
        [this, epoch, cb = std::move(cb),
         result = std::move(result)]() mutable {
            if (epoch != epoch_)
                return;
            cb(std::move(result));
        });
}

void
ConvDevice::submit(IoRequest req, IoCallback cb)
{
    assert(cb);
    if (failed_) {
        stats_.errors++;
        IoResult r;
        r.status = Status(StatusCode::kOffline, "device failed");
        complete(loop_->now() + kNsPerUs, std::move(cb), std::move(r));
        return;
    }

    IoResult result;
    Tick when = loop_->now();

    if (req.preflush && req.op != IoOp::kFlush)
        when = std::max(when, timing_->flush_done());

    switch (req.op) {
      case IoOp::kRead: {
        if (req.nsectors == 0 ||
            req.slba + req.nsectors > geom_.nsectors) {
            result.status =
                Status(StatusCode::kInvalidArgument, "read out of range");
            break;
        }
        stats_.reads++;
        stats_.sectors_read += req.nsectors;
        result.lba = req.slba;
        if (config_.data_mode == DataMode::kStore) {
            result.data.assign(
                static_cast<size_t>(req.nsectors) * kSectorSize, 0);
            if (!data_.empty()) {
                std::memcpy(result.data.data(),
                            data_.data() + req.slba * kSectorSize,
                            result.data.size());
            }
        }
        when = std::max(when, timing_->read_done(req.nsectors));
        break;
      }
      case IoOp::kWrite: {
        if (req.nsectors == 0 ||
            req.slba + req.nsectors > geom_.nsectors) {
            result.status =
                Status(StatusCode::kInvalidArgument, "write out of range");
            break;
        }
        // Payload must be sector-aligned and agree with nsectors
        // (empty payloads are timing-only writes and always legal).
        if (!req.data.empty() &&
            (req.data.size() % kSectorSize != 0 ||
             req.data.size() / kSectorSize != req.nsectors)) {
            result.status = Status(StatusCode::kInvalidArgument,
                                   "payload size disagrees with nsectors");
            break;
        }
        stats_.writes++;
        stats_.sectors_written += req.nsectors;
        result.lba = req.slba;
        if (config_.data_mode == DataMode::kStore) {
            if (data_.empty())
                data_.assign(geom_.nsectors * kSectorSize, 0);
            size_t len = static_cast<size_t>(req.nsectors) * kSectorSize;
            if (!req.data.empty()) {
                assert(req.data.size() == len);
                std::memcpy(data_.data() + req.slba * kSectorSize,
                            req.data.data(), len);
            } else {
                std::memset(data_.data() + req.slba * kSectorSize, 0, len);
            }
        }
        // Run every page through the FTL; GC work it triggers occupies
        // device units ahead of later commands.
        GcWork total;
        for (uint32_t i = 0; i < req.nsectors; ++i) {
            GcWork w = ftl_->write_page(req.slba + i);
            total.pages_copied += w.pages_copied;
            total.blocks_erased += w.blocks_erased;
        }
        when = std::max(when, timing_->write_done(req.nsectors));
        if (total.pages_copied > 0) {
            stats_.gc_page_copies += total.pages_copied;
            // Each relocated page costs a read + program on the media.
            Tick gc_done = timing_->internal_copy_done(
                static_cast<uint32_t>(total.pages_copied));
            when = std::max(when, gc_done);
        }
        if (total.blocks_erased > 0) {
            stats_.gc_erases += total.blocks_erased;
            for (uint64_t e = 0; e < total.blocks_erased; ++e)
                when = std::max(when, timing_->reset_done());
        }
        break;
      }
      case IoOp::kFlush: {
        stats_.flushes++;
        when = std::max(when, timing_->flush_done());
        break;
      }
      default:
        result.status =
            Status(StatusCode::kNotSupported, "zone op on block device");
        break;
    }

    if (!result.status.is_ok())
        stats_.errors++;
    else if (ledger_ != nullptr)
        ledger_->record(ledger_dev_, req.op, req.cause, req.slba,
                        req.nsectors);
    complete(std::max(when, loop_->now() + 1), std::move(cb),
             std::move(result));
}

void
ConvDevice::trim(uint64_t slba, uint64_t nsectors)
{
    assert(slba + nsectors <= geom_.nsectors);
    for (uint64_t i = 0; i < nsectors; ++i)
        ftl_->trim_page(slba + i);
}

void
ConvDevice::reattach(EventLoop *loop)
{
    loop_ = loop;
    epoch_++;
    timing_ = std::make_unique<TimingModel>(*loop_, config_.timing);
    timing_->set_busy_accumulator(&stats_.busy_ns);
}

void
ConvDevice::replace()
{
    failed_ = false;
    epoch_++;
    data_.clear();
    FtlConfig fcfg;
    fcfg.user_pages = config_.nsectors;
    fcfg.op_ratio = config_.op_ratio;
    fcfg.pages_per_block = config_.pages_per_block;
    fcfg.gc_low_blocks = config_.gc_low_blocks;
    fcfg.gc_high_blocks = config_.gc_high_blocks;
    ftl_ = std::make_unique<Ftl>(fcfg);
    stats_ = DeviceStats{};
    // Counters restarted from zero on a factory-fresh device: move the
    // ledger's audit baseline along or every delta check would trip.
    if (ledger_ != nullptr)
        ledger_->rebind_device(ledger_dev_, this);
}

} // namespace raizn
