/**
 * @file
 * Page-mapped flash translation layer used by the conventional-SSD
 * emulation. Tracks LBA→physical-page mappings, per-erase-block valid
 * counts, over-provisioned blocks, and runs greedy garbage collection
 * when free blocks run low.
 *
 * The FTL is purely logical: it decides *what* gets copied/erased; the
 * owning device charges the corresponding time on its TimingModel. This
 * is the mechanism behind Fig. 10's mdraid throughput collapse.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace raizn {

struct FtlConfig {
    uint64_t user_pages = 0; ///< advertised capacity in pages (sectors)
    double op_ratio = 0.07; ///< extra physical space fraction
    uint32_t pages_per_block = 512; ///< 2 MiB erase blocks at 4 KiB pages
    /// GC starts when free blocks drop to the low watermark and runs
    /// until the high watermark is restored.
    uint32_t gc_low_blocks = 4;
    uint32_t gc_high_blocks = 8;
};

/// Work performed by the FTL while absorbing one host page write.
struct GcWork {
    uint64_t pages_copied = 0;
    uint64_t blocks_erased = 0;
};

class Ftl
{
  public:
    explicit Ftl(FtlConfig config);

    /**
     * Absorbs a host write of one page to `lba`. Returns the GC work
     * (valid-page copies, erases) triggered by this write so the caller
     * can charge device time for it.
     */
    GcWork write_page(uint64_t lba);

    /// Host trim/deallocate: drops the mapping without writing.
    void trim_page(uint64_t lba);

    bool is_mapped(uint64_t lba) const;

    uint64_t free_blocks() const
    {
        return free_list_.size();
    }
    uint64_t total_blocks() const { return nblocks_; }
    uint64_t pages_written() const { return host_pages_written_; }
    uint64_t gc_pages_copied() const { return gc_pages_copied_; }

    /// Cumulative write amplification (flash programs / host writes).
    double write_amplification() const;

    /// Physical blocks beyond the advertised user capacity: the
    /// over-provisioning pool the FTL burns down before GC kicks in.
    uint64_t op_blocks() const
    {
        uint64_t user_blocks =
            (cfg_.user_pages + cfg_.pages_per_block - 1) /
            cfg_.pages_per_block;
        return nblocks_ > user_blocks ? nblocks_ - user_blocks : 0;
    }

    /**
     * Fraction of physical space currently consumed (no free block
     * behind it), in percent [0, 100]. Crosses toward 100 as the OP
     * pool exhausts — the leading indicator of the Fig. 10 collapse.
     */
    uint64_t op_used_pct() const
    {
        if (nblocks_ == 0)
            return 0;
        return 100 - free_list_.size() * 100 / nblocks_;
    }

    /// True while the device is in the GC regime (free <= low mark).
    bool gc_active() const
    {
        return free_list_.size() <= cfg_.gc_low_blocks;
    }

  private:
    static constexpr uint64_t kUnmapped = UINT64_MAX;

    uint64_t alloc_page(GcWork &work, bool for_gc);
    void invalidate(uint64_t ppa);
    void gc_collect(GcWork &work);
    uint32_t pick_victim() const;
    void map(uint64_t lba, uint64_t ppa);

    FtlConfig cfg_;
    uint64_t nblocks_;
    std::vector<uint64_t> l2p_; ///< lba -> ppa
    std::vector<uint64_t> p2l_; ///< ppa -> lba
    std::vector<uint32_t> valid_count_; ///< per block
    std::vector<uint32_t> write_ptr_; ///< next page within block, or done
    std::vector<bool> sealed_; ///< block fully programmed
    std::deque<uint32_t> free_list_;
    int64_t user_block_ = -1; ///< active block for host writes
    int64_t gc_block_ = -1; ///< active block for GC relocation
    uint64_t host_pages_written_ = 0;
    uint64_t gc_pages_copied_ = 0;
};

} // namespace raizn
