/**
 * @file
 * ZNS zone state machine types (NVMe ZNS Command Set §2).
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace raizn {

/// Zone states from the ZNS specification.
enum class ZoneState : uint8_t {
    kEmpty,
    kImplicitOpen,
    kExplicitOpen,
    kClosed,
    kFull,
    kReadOnly,
    kOffline,
};

constexpr std::string_view
to_string(ZoneState s)
{
    switch (s) {
      case ZoneState::kEmpty: return "EMPTY";
      case ZoneState::kImplicitOpen: return "IMPLICIT_OPEN";
      case ZoneState::kExplicitOpen: return "EXPLICIT_OPEN";
      case ZoneState::kClosed: return "CLOSED";
      case ZoneState::kFull: return "FULL";
      case ZoneState::kReadOnly: return "READ_ONLY";
      case ZoneState::kOffline: return "OFFLINE";
    }
    return "?";
}

/// True for states that count against the device's open-zone limit.
constexpr bool
is_open(ZoneState s)
{
    return s == ZoneState::kImplicitOpen || s == ZoneState::kExplicitOpen;
}

/// True for states that count against the device's active-zone limit.
constexpr bool
is_active(ZoneState s)
{
    return is_open(s) || s == ZoneState::kClosed;
}

/// Snapshot of one zone, as returned by Report Zones.
struct ZoneInfo {
    uint64_t start; ///< first LBA of the zone (zone size aligned)
    uint64_t capacity; ///< writable sectors (<= zone size)
    uint64_t wp; ///< next writable LBA (absolute)
    ZoneState state;

    /// Sectors written so far.
    uint64_t written() const { return wp - start; }
    bool empty() const { return state == ZoneState::kEmpty; }
    bool full() const { return state == ZoneState::kFull; }
};

} // namespace raizn
