#include "zns/ftl.h"

#include <cassert>

#include "common/logging.h"
#include "common/units.h"

namespace raizn {

Ftl::Ftl(FtlConfig config) : cfg_(config)
{
    assert(cfg_.user_pages > 0);
    uint64_t phys_pages = static_cast<uint64_t>(
        static_cast<double>(cfg_.user_pages) * (1.0 + cfg_.op_ratio));
    nblocks_ = div_ceil(phys_pages, cfg_.pages_per_block);
    // Keep enough headroom for the watermarks plus two active blocks.
    uint64_t min_blocks = div_ceil(cfg_.user_pages, cfg_.pages_per_block) +
        cfg_.gc_high_blocks + 2;
    if (nblocks_ < min_blocks)
        nblocks_ = min_blocks;

    l2p_.assign(cfg_.user_pages, kUnmapped);
    p2l_.assign(nblocks_ * cfg_.pages_per_block, kUnmapped);
    valid_count_.assign(nblocks_, 0);
    write_ptr_.assign(nblocks_, 0);
    sealed_.assign(nblocks_, false);
    for (uint32_t b = 0; b < nblocks_; ++b)
        free_list_.push_back(b);
}

void
Ftl::map(uint64_t lba, uint64_t ppa)
{
    l2p_[lba] = ppa;
    p2l_[ppa] = lba;
    valid_count_[ppa / cfg_.pages_per_block]++;
}

void
Ftl::invalidate(uint64_t ppa)
{
    uint64_t block = ppa / cfg_.pages_per_block;
    assert(valid_count_[block] > 0);
    valid_count_[block]--;
    p2l_[ppa] = kUnmapped;
}

uint32_t
Ftl::pick_victim() const
{
    // Greedy: sealed block with the fewest valid pages. Skip the active
    // blocks.
    uint32_t best = UINT32_MAX;
    uint32_t best_valid = UINT32_MAX;
    for (uint32_t b = 0; b < nblocks_; ++b) {
        if (!sealed_[b])
            continue;
        if (static_cast<int64_t>(b) == user_block_ ||
            static_cast<int64_t>(b) == gc_block_) {
            continue;
        }
        if (valid_count_[b] < best_valid) {
            best_valid = valid_count_[b];
            best = b;
        }
    }
    return best;
}

void
Ftl::gc_collect(GcWork &work)
{
    while (free_list_.size() < cfg_.gc_high_blocks) {
        uint32_t victim = pick_victim();
        if (victim == UINT32_MAX)
            return; // nothing reclaimable
        // Relocate valid pages into the GC active block.
        uint64_t base = static_cast<uint64_t>(victim) *
            cfg_.pages_per_block;
        for (uint32_t p = 0; p < cfg_.pages_per_block; ++p) {
            uint64_t lba = p2l_[base + p];
            if (lba == kUnmapped)
                continue;
            invalidate(base + p);
            uint64_t dst = alloc_page(work, true);
            map(lba, dst);
            work.pages_copied++;
            gc_pages_copied_++;
        }
        assert(valid_count_[victim] == 0);
        sealed_[victim] = false;
        write_ptr_[victim] = 0;
        free_list_.push_back(victim);
        work.blocks_erased++;
    }
}

uint64_t
Ftl::alloc_page(GcWork &work, bool for_gc)
{
    int64_t &active = for_gc ? gc_block_ : user_block_;
    if (active >= 0 && write_ptr_[static_cast<size_t>(active)] >=
        cfg_.pages_per_block) {
        sealed_[static_cast<size_t>(active)] = true;
        active = -1;
    }
    if (active < 0) {
        if (free_list_.empty()) {
            // Forced foreground GC: must free a block to proceed.
            gc_collect(work);
        }
        if (free_list_.empty())
            RAIZN_PANIC("FTL out of space: no reclaimable block");
        active = free_list_.front();
        free_list_.pop_front();
    }
    uint64_t block = static_cast<uint64_t>(active);
    uint64_t ppa = block * cfg_.pages_per_block + write_ptr_[block];
    write_ptr_[block]++;
    if (write_ptr_[block] >= cfg_.pages_per_block) {
        sealed_[block] = true;
        active = -1;
    }
    return ppa;
}

GcWork
Ftl::write_page(uint64_t lba)
{
    assert(lba < cfg_.user_pages);
    GcWork work;
    if (l2p_[lba] != kUnmapped)
        invalidate(l2p_[lba]);
    uint64_t ppa = alloc_page(work, false);
    map(lba, ppa);
    host_pages_written_++;
    // Background GC keeps the free pool between the watermarks.
    if (free_list_.size() <= cfg_.gc_low_blocks)
        gc_collect(work);
    return work;
}

void
Ftl::trim_page(uint64_t lba)
{
    assert(lba < cfg_.user_pages);
    if (l2p_[lba] != kUnmapped) {
        invalidate(l2p_[lba]);
        l2p_[lba] = kUnmapped;
    }
}

bool
Ftl::is_mapped(uint64_t lba) const
{
    assert(lba < cfg_.user_pages);
    return l2p_[lba] != kUnmapped;
}

double
Ftl::write_amplification() const
{
    if (host_pages_written_ == 0)
        return 1.0;
    return static_cast<double>(host_pages_written_ + gc_pages_copied_) /
        static_cast<double>(host_pages_written_);
}

} // namespace raizn
