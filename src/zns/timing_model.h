/**
 * @file
 * Device service-time model. A device is modelled as a set of parallel
 * service units (channels/die groups); each command occupies one unit for
 * a fixed per-command overhead plus a size-proportional transfer time.
 *
 * This reproduces the throughput-vs-block-size and queue-depth behaviour
 * the paper's fio sweeps exercise: small blocks are overhead-bound
 * (IOPS-limited), large blocks approach aggregate bandwidth.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace raizn {

class EventLoop;

/// Calibration knobs. Defaults approximate the paper's WD ZN540:
/// 1052 MiB/s write, 3265 MiB/s read (§6.1).
struct TimingParams {
    uint32_t units = 8; ///< internal parallelism
    double read_bw_mibs = 3265.0; ///< aggregate read bandwidth
    double write_bw_mibs = 1052.0; ///< aggregate write bandwidth
    Tick read_overhead = 30 * kNsPerUs; ///< per-command fixed cost
    Tick write_overhead = 25 * kNsPerUs;
    Tick flush_latency = 40 * kNsPerUs;
    Tick reset_latency = 2 * kNsPerMs; ///< zone reset / block erase
    Tick finish_latency = 1 * kNsPerMs;

    /// Conventional SSD preset: marginally faster than ZNS per the paper
    /// (ZNS read/write 4%/2% lower due to firmware maturity).
    static TimingParams conventional();
    /// ZNS SSD preset (the defaults above).
    static TimingParams zns();
};

/**
 * Tracks per-unit busy horizons and computes completion times.
 * Deterministic: commands are placed on the earliest-free unit.
 */
class TimingModel
{
  public:
    TimingModel(EventLoop &loop, TimingParams params);

    const TimingParams &params() const { return params_; }

    /// Schedules a read of `nsectors`; returns absolute completion tick.
    Tick read_done(uint32_t nsectors);
    /// Schedules a write/program of `nsectors`.
    Tick write_done(uint32_t nsectors);
    /// Schedules a zone reset / erase.
    Tick reset_done();
    Tick finish_done();
    /// Flush: completes after all queued writes plus flush latency.
    Tick flush_done();

    /**
     * Occupies one unit for an internal operation (FTL GC page copy =
     * read + program on the same unit). Returns completion tick.
     */
    Tick internal_copy_done(uint32_t nsectors);

    /// Earliest tick at which every unit is idle.
    Tick drain_tick() const;

    /**
     * Accumulates every unit-occupancy (service time, ns) into `*acc`.
     * Devices point this at their DeviceStats::busy_ns so busy time
     * survives the TimingModel being rebuilt on reattach/replace.
     */
    void set_busy_accumulator(uint64_t *acc) { busy_acc_ = acc; }

  private:
    Tick occupy(Tick service);
    Tick service_read(uint32_t nsectors) const;
    Tick service_write(uint32_t nsectors) const;

    EventLoop &loop_;
    TimingParams params_;
    std::vector<Tick> unit_free_; ///< per-unit next-free time
    uint64_t *busy_acc_ = nullptr;
};

} // namespace raizn
