#include "zns/timing_model.h"

#include <algorithm>
#include <cassert>

#include "sim/event_loop.h"

namespace raizn {

TimingParams
TimingParams::zns()
{
    return TimingParams{};
}

TimingParams
TimingParams::conventional()
{
    TimingParams p;
    p.read_bw_mibs = 3400.0; // ~4% above ZNS (paper §6.1)
    p.write_bw_mibs = 1075.0; // ~2% above ZNS
    p.read_overhead = 27 * kNsPerUs;
    p.write_overhead = 22 * kNsPerUs;
    return p;
}

TimingModel::TimingModel(EventLoop &loop, TimingParams params)
    : loop_(loop), params_(params), unit_free_(params.units, 0)
{
    assert(params.units > 0);
}

Tick
TimingModel::service_read(uint32_t nsectors) const
{
    // Per-unit bandwidth: aggregate / units.
    double bytes = static_cast<double>(nsectors) * kSectorSize;
    double per_unit_bw =
        params_.read_bw_mibs * static_cast<double>(kMiB) / params_.units;
    return params_.read_overhead +
        static_cast<Tick>(bytes / per_unit_bw * kNsPerSec);
}

Tick
TimingModel::service_write(uint32_t nsectors) const
{
    double bytes = static_cast<double>(nsectors) * kSectorSize;
    double per_unit_bw =
        params_.write_bw_mibs * static_cast<double>(kMiB) / params_.units;
    return params_.write_overhead +
        static_cast<Tick>(bytes / per_unit_bw * kNsPerSec);
}

Tick
TimingModel::occupy(Tick service)
{
    // Earliest-free unit; ties resolve to the lowest index for
    // determinism.
    auto it = std::min_element(unit_free_.begin(), unit_free_.end());
    Tick start = std::max(loop_.now(), *it);
    Tick done = start + service;
    *it = done;
    if (busy_acc_ != nullptr)
        *busy_acc_ += service;
    return done;
}

Tick
TimingModel::read_done(uint32_t nsectors)
{
    return occupy(service_read(nsectors));
}

Tick
TimingModel::write_done(uint32_t nsectors)
{
    return occupy(service_write(nsectors));
}

Tick
TimingModel::reset_done()
{
    return occupy(params_.reset_latency);
}

Tick
TimingModel::finish_done()
{
    return occupy(params_.finish_latency);
}

Tick
TimingModel::flush_done()
{
    // A flush waits for every pending program to land, then pays the
    // flush latency; it does not occupy a data unit.
    return drain_tick() + params_.flush_latency;
}

Tick
TimingModel::internal_copy_done(uint32_t nsectors)
{
    return occupy(service_read(nsectors) + service_write(nsectors));
}

Tick
TimingModel::drain_tick() const
{
    Tick t = loop_.now();
    for (Tick f : unit_free_)
        t = std::max(t, f);
    return t;
}

} // namespace raizn
