/**
 * @file
 * sysbench-style OLTP transaction mixes over OltpDatabase (§6.3):
 * oltp_read_only (10 point selects + 4 ranges), oltp_write_only
 * (2 updates + delete/insert pair), oltp_read_write (both).
 * Throughput and latency are measured in virtual time.
 */
#pragma once

#include "common/histogram.h"
#include "oltp/table.h"

namespace raizn {

class EventLoop;

enum class OltpWorkload {
    kReadOnly,
    kWriteOnly,
    kReadWrite,
};

constexpr const char *
to_string(OltpWorkload w)
{
    switch (w) {
      case OltpWorkload::kReadOnly: return "oltp_read_only";
      case OltpWorkload::kWriteOnly: return "oltp_write_only";
      case OltpWorkload::kReadWrite: return "oltp_read_write";
    }
    return "?";
}

struct OltpResult {
    uint64_t transactions = 0;
    uint64_t errors = 0;
    Tick elapsed = 0;
    Histogram latency;

    double
    tps() const
    {
        if (elapsed == 0)
            return 0;
        return static_cast<double>(transactions) /
            (static_cast<double>(elapsed) / kNsPerSec);
    }
};

/// Runs `txns` transactions of the given mix.
OltpResult run_sysbench(EventLoop *loop, OltpDatabase *db,
                        OltpWorkload workload, uint64_t txns,
                        uint64_t seed = 1);

} // namespace raizn
