#include "oltp/table.h"

#include <cstdio>

namespace raizn {

std::string
OltpDatabase::row_key(uint32_t table, uint64_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t%02u:%010llu", table,
                  (unsigned long long)id);
    return buf;
}

std::string
OltpDatabase::make_row(Rng &rng) const
{
    std::string row(cfg_.row_bytes, 0);
    for (auto &c : row)
        c = static_cast<char>('a' + rng.next_below(26));
    return row;
}

Status
OltpDatabase::prepare()
{
    Rng rng(42);
    for (uint32_t t = 0; t < cfg_.tables; ++t) {
        for (uint64_t id = 0; id < cfg_.rows_per_table; ++id) {
            Status st = db_->put(row_key(t, id), make_row(rng));
            if (!st)
                return st;
        }
    }
    return db_->flush_all();
}

Status
OltpDatabase::select_row(uint32_t table, uint64_t id)
{
    auto res = db_->get(row_key(table, id));
    if (!res.is_ok() && res.status().code() != StatusCode::kNotFound)
        return res.status();
    return Status::ok();
}

Status
OltpDatabase::select_range(uint32_t table, uint64_t id, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i) {
        uint64_t rid = (id + i) % cfg_.rows_per_table;
        Status st = select_row(table, rid);
        if (!st)
            return st;
    }
    return Status::ok();
}

Status
OltpDatabase::update_row(uint32_t table, uint64_t id, Rng &rng)
{
    return db_->put(row_key(table, id), make_row(rng));
}

Status
OltpDatabase::insert_row(uint32_t table, uint64_t id, Rng &rng)
{
    return db_->put(row_key(table, id), make_row(rng));
}

Status
OltpDatabase::delete_row(uint32_t table, uint64_t id)
{
    return db_->delete_key(row_key(table, id));
}

} // namespace raizn
