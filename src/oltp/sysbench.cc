#include "oltp/sysbench.h"

#include "sim/event_loop.h"

namespace raizn {

namespace {

Status
txn_read_only(OltpDatabase *db, Rng &rng)
{
    const auto &cfg = db->config();
    // 10 point selects.
    for (int i = 0; i < 10; ++i) {
        uint32_t t = static_cast<uint32_t>(rng.next_below(cfg.tables));
        Status st =
            db->select_row(t, rng.next_below(cfg.rows_per_table));
        if (!st)
            return st;
    }
    // 4 range queries of 100 rows (sysbench's sum/order/distinct).
    for (int i = 0; i < 4; ++i) {
        uint32_t t = static_cast<uint32_t>(rng.next_below(cfg.tables));
        Status st = db->select_range(
            t, rng.next_below(cfg.rows_per_table), 100);
        if (!st)
            return st;
    }
    return Status::ok();
}

Status
txn_write_only(OltpDatabase *db, Rng &rng)
{
    const auto &cfg = db->config();
    for (int i = 0; i < 2; ++i) {
        uint32_t t = static_cast<uint32_t>(rng.next_below(cfg.tables));
        Status st =
            db->update_row(t, rng.next_below(cfg.rows_per_table), rng);
        if (!st)
            return st;
    }
    uint32_t t = static_cast<uint32_t>(rng.next_below(cfg.tables));
    uint64_t id = rng.next_below(cfg.rows_per_table);
    Status st = db->delete_row(t, id);
    if (!st)
        return st;
    return db->insert_row(t, id, rng);
}

} // namespace

OltpResult
run_sysbench(EventLoop *loop, OltpDatabase *db, OltpWorkload workload,
             uint64_t txns, uint64_t seed)
{
    OltpResult out;
    Rng rng(seed);
    Tick start = loop->now();
    for (uint64_t i = 0; i < txns; ++i) {
        Tick t0 = loop->now();
        Status st;
        switch (workload) {
          case OltpWorkload::kReadOnly:
            st = txn_read_only(db, rng);
            break;
          case OltpWorkload::kWriteOnly:
            st = txn_write_only(db, rng);
            break;
          case OltpWorkload::kReadWrite:
            st = txn_read_only(db, rng);
            if (st)
                st = txn_write_only(db, rng);
            break;
        }
        if (st)
            out.transactions++;
        else
            out.errors++;
        out.latency.add(loop->now() - t0);
    }
    out.elapsed = loop->now() - start;
    return out;
}

} // namespace raizn
