/**
 * @file
 * Relational table layer over the KV store: a MyRocks-style stand-in
 * for the paper's MySQL benchmarks. Each sysbench table's rows live
 * under a key prefix; transactions are storage-level operations (the
 * SQL layer's parse/plan cost is not what differentiates the arrays).
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "kv/db.h"

namespace raizn {

class OltpDatabase
{
  public:
    struct Config {
        uint32_t tables = 8;
        uint64_t rows_per_table = 10000;
        uint32_t row_bytes = 180; ///< sysbench c(120) + pad(60)
    };

    OltpDatabase(Db *db, Config config) : db_(db), cfg_(config) {}

    /// sysbench "prepare": populates all tables.
    Status prepare();

    /// Point SELECT of one row.
    Status select_row(uint32_t table, uint64_t id);
    /// Range "SELECT ... WHERE id BETWEEN a AND a+n" (n point reads on
    /// the id-ordered primary key).
    Status select_range(uint32_t table, uint64_t id, uint32_t n);
    Status update_row(uint32_t table, uint64_t id, Rng &rng);
    Status insert_row(uint32_t table, uint64_t id, Rng &rng);
    Status delete_row(uint32_t table, uint64_t id);

    const Config &config() const { return cfg_; }
    Db *db() const { return db_; }

    static std::string row_key(uint32_t table, uint64_t id);
    std::string make_row(Rng &rng) const;

  private:
    Db *db_;
    Config cfg_;
};

} // namespace raizn
