#include "fault/fault_device.h"

#include "sim/event_loop.h"

namespace raizn {

namespace {

bool
is_write_like(IoOp op)
{
    return op == IoOp::kWrite || op == IoOp::kAppend || op == IoOp::kFlush;
}

bool
is_zone_mgmt(IoOp op)
{
    return op == IoOp::kZoneReset || op == IoOp::kZoneFinish ||
           op == IoOp::kZoneOpen || op == IoOp::kZoneClose;
}

} // namespace

FaultInjectingDevice::FaultInjectingDevice(EventLoop *loop,
                                           BlockDevice *inner,
                                           FaultConfig config)
    : loop_(loop), inner_(inner), config_(config), rng_(config.seed)
{
}

FaultInjectingDevice::Draw
FaultInjectingDevice::draw()
{
    // Always five samples per command, in a fixed order, so the fault
    // schedule for command N depends only on the seed and N.
    Draw d;
    d.err = rng_.next_double();
    d.zone = rng_.next_double();
    d.torn = rng_.next_double();
    d.flip = rng_.next_double();
    d.stuck = rng_.next_double();
    return d;
}

void
FaultInjectingDevice::inject_once(IoOp op, FaultKind kind)
{
    one_shots_.emplace_back(op, kind);
}

bool
FaultInjectingDevice::take_injection(IoOp op, FaultKind kind)
{
    for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
        if (it->first == op && it->second == kind) {
            one_shots_.erase(it);
            return true;
        }
    }
    return false;
}

void
FaultInjectingDevice::deliver(IoCallback cb, IoResult r, Tick extra)
{
    if (extra == 0) {
        cb(std::move(r));
        return;
    }
    auto shared =
        std::make_shared<std::pair<IoCallback, IoResult>>(std::move(cb),
                                                          std::move(r));
    loop_->schedule_after(extra, [this, shared] {
        shared->second.complete_tick = loop_->now();
        shared->first(std::move(shared->second));
    });
}

void
FaultInjectingDevice::submit(IoRequest req, IoCallback cb)
{
    if (inner_->failed()) {
        // Let the inner device produce its kOffline completion so hard
        // failure detection behaves exactly as without the wrapper.
        inner_->submit(std::move(req), std::move(cb));
        return;
    }

    fstats_.ops++;
    Draw d = draw();
    const IoOp op = req.op;
    const bool writeish = is_write_like(op);
    const bool zoneish = writeish || is_zone_mgmt(op);
    Tick slow_extra = 0;
    if (config_.latency_multiplier > 1.0 || config_.stuck_rate > 0 ||
        !one_shots_.empty()) {
        if (d.stuck < config_.stuck_rate ||
            take_injection(op, FaultKind::kStuck)) {
            slow_extra += config_.stuck_delay;
            fstats_.stuck_ios++;
        }
    }

    // 1. Transient command error: the command never reaches the device.
    double err_rate =
        op == IoOp::kRead ? config_.read_error_rate
                          : (writeish ? config_.write_error_rate : 0.0);
    if (d.err < err_rate || take_injection(op, FaultKind::kIoError)) {
        if (op == IoOp::kRead)
            fstats_.read_errors++;
        else
            fstats_.write_errors++;
        IoResult r;
        r.status = Status(StatusCode::kIoError, "injected transient error");
        r.submit_tick = loop_->now();
        r.complete_tick = loop_->now() + config_.error_latency;
        deliver(std::move(cb), std::move(r),
                config_.error_latency + slow_extra);
        return;
    }

    // 2. Transient zone-state error (ZNS contract violation): kBusy.
    if (zoneish && (d.zone < config_.zone_error_rate ||
                    take_injection(op, FaultKind::kZoneBusy))) {
        fstats_.zone_errors++;
        IoResult r;
        r.status = Status(StatusCode::kBusy, "injected zone-state error");
        r.submit_tick = loop_->now();
        r.complete_tick = loop_->now() + config_.error_latency;
        deliver(std::move(cb), std::move(r),
                config_.error_latency + slow_extra);
        return;
    }

    // 3. Torn multi-sector write: forward a sector prefix, fail the
    // command. The inner write pointer advances by the prefix only.
    if (op == IoOp::kWrite && req.nsectors > 1 &&
        (d.torn < config_.torn_write_rate ||
         take_injection(op, FaultKind::kTornWrite))) {
        fstats_.torn_writes++;
        uint32_t keep = 1 + static_cast<uint32_t>(
                                rng_.next_below(req.nsectors - 1));
        IoRequest prefix = req;
        prefix.nsectors = keep;
        prefix.fua = false; // the command fails; nothing is acked durable
        if (!prefix.data.empty())
            prefix.data.resize(static_cast<size_t>(keep) * kSectorSize);
        Tick extra = slow_extra;
        inner_->submit(std::move(prefix),
                       [this, cb = std::move(cb), extra](IoResult r) {
                           r.status =
                               Status(StatusCode::kIoError, "injected torn write");
                           Tick d2 = extra;
                           if (config_.latency_multiplier > 1.0)
                               d2 += static_cast<Tick>(
                                   (config_.latency_multiplier - 1.0) *
                                   static_cast<double>(r.latency()));
                           deliver(std::move(cb), std::move(r), d2);
                       });
        return;
    }

    // 4/5. Forwarded command, possibly with a silent read bit-flip and
    // fail-slow delay on the completion.
    bool flip = op == IoOp::kRead &&
                (d.flip < config_.bitflip_rate ||
                 take_injection(op, FaultKind::kBitflip));
    uint64_t flip_sel = flip ? rng_.next() : 0;
    inner_->submit(
        std::move(req),
        [this, cb = std::move(cb), flip, flip_sel,
         slow_extra](IoResult r) {
            if (flip && r.status.is_ok() && !r.data.empty()) {
                uint64_t bit = flip_sel % (r.data.size() * 8);
                r.data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
                fstats_.bitflips++;
            }
            Tick extra = slow_extra;
            if (config_.latency_multiplier > 1.0)
                extra += static_cast<Tick>(
                    (config_.latency_multiplier - 1.0) *
                    static_cast<double>(r.latency()));
            deliver(std::move(cb), std::move(r), extra);
        });
}

} // namespace raizn
