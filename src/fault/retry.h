/**
 * @file
 * Bounded retry with exponential backoff and an I/O deadline watchdog
 * for per-device commands. Sits between a volume and its member
 * devices: transient errors (kIoError, kBusy) are retried on an
 * EventLoop timer with exponentially growing backoff; commands that
 * outlive the deadline are counted as timeouts, their eventual (stale)
 * completion is dropped, and the command is retried; a command that
 * exhausts its budget is reported to the HealthMonitor as a failed
 * operation and errors out to the caller.
 *
 * Zoned writes need more care than idempotent commands: a failed write
 * may have partially landed (torn write), and sibling sub-IOs retried
 * out of order surface kWritePointerMismatch. Retry therefore probes
 * the zone's write pointer (synchronous admin path) and acts on it:
 *   wp >= end           the payload already landed — synthesize
 *                       success (after an explicit flush if the
 *                       original command was FUA, so durability is
 *                       never claimed spuriously)
 *   slba < wp < end     resubmit only the missing tail
 *   wp == slba          resubmit the whole command
 *   wp < slba           an earlier sub-IO has not landed yet — wait a
 *                       backoff period and probe again, without
 *                       consuming transient-retry budget
 * kWritePointerMismatch likewise routes to the probe without spending
 * the transient budget (it is self-inflicted ordering, not a device
 * fault); the overall attempt cap still bounds the loop.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "zns/block_device.h"

namespace raizn {

class EventLoop;
class HealthMonitor;

struct RetryPolicy {
    bool enabled = true;
    uint32_t max_transient_retries = 3; ///< retries after first attempt
    uint32_t attempt_cap = 16; ///< hard bound incl. wp-probe reissues
    Tick backoff_base = 50 * kNsPerUs;
    uint32_t backoff_mult = 4; ///< backoff = base * mult^(n-1) + jitter
    /// Watchdog deadline per attempt. 0 (the default) disables the
    /// watchdog: completion time includes device queueing, so a
    /// deadline is only meaningful for bounded-queue-depth workloads.
    /// When enabled it must exceed the slowest command at the expected
    /// queue depth (zone reset alone is 2ms).
    Tick io_deadline = 0;
    uint64_t jitter_seed = 0x7e717e5ULL;
};

class IoRetrier
{
  public:
    /**
     * `health` may be null. `retry_counter` / `timeout_counter` are
     * owner-provided stat cells (e.g. &VolumeStats::io_retries),
     * incremented per retry / per watchdog expiration; may be null.
     */
    IoRetrier(EventLoop *loop, RetryPolicy policy, HealthMonitor *health,
              uint64_t *retry_counter, uint64_t *timeout_counter);

    /**
     * Submits `req` to `dev` with retry/watchdog handling; `cb` fires
     * exactly once with the final outcome. `dev_index` identifies the
     * device to the HealthMonitor.
     */
    void submit(BlockDevice *dev, uint32_t dev_index, IoRequest req,
                IoCallback cb);

    const RetryPolicy &policy() const { return policy_; }

  private:
    struct OpState;

    void issue(const std::shared_ptr<OpState> &st);
    void on_complete(const std::shared_ptr<OpState> &st, IoResult r);
    void handle_retryable(const std::shared_ptr<OpState> &st, Status why);
    void prepare_attempt(const std::shared_ptr<OpState> &st);
    void exhaust(const std::shared_ptr<OpState> &st, Status why);
    void finish(const std::shared_ptr<OpState> &st, IoResult r);
    Tick backoff_for(uint32_t transient);

    EventLoop *loop_;
    RetryPolicy policy_;
    HealthMonitor *health_;
    uint64_t *retries_;
    uint64_t *timeouts_;
    Rng jitter_;
};

} // namespace raizn
