#include "fault/retry.h"

#include <algorithm>

#include "fault/health.h"
#include "sim/event_loop.h"

namespace raizn {

struct IoRetrier::OpState {
    BlockDevice *dev = nullptr;
    uint32_t idx = 0;
    IoRequest orig; ///< original request (never mutated)
    IoRequest active; ///< request for the current attempt
    IoCallback cb;
    bool synth_flush = false; ///< active is a flush standing in for a
                              ///< write whose payload already landed
    uint32_t transient = 0; ///< transient-retry budget consumed
    uint32_t attempts = 0;
    uint32_t stalls = 0; ///< consecutive wp probes with no progress
    uint64_t last_wp = UINT64_MAX; ///< wp seen by the previous probe
    uint64_t cur = 0; ///< attempt id; stale completions are dropped
    bool done = false;
    Tick first_submit = 0;
};

IoRetrier::IoRetrier(EventLoop *loop, RetryPolicy policy,
                     HealthMonitor *health, uint64_t *retry_counter,
                     uint64_t *timeout_counter)
    : loop_(loop), policy_(policy), health_(health),
      retries_(retry_counter), timeouts_(timeout_counter),
      jitter_(policy.jitter_seed)
{
}

Tick
IoRetrier::backoff_for(uint32_t transient)
{
    Tick b = policy_.backoff_base;
    for (uint32_t i = 1; i < transient; ++i)
        b *= policy_.backoff_mult;
    // Small deterministic jitter breaks same-tick retry convoys.
    return b + jitter_.next_below(policy_.backoff_base / 4 + 1);
}

void
IoRetrier::submit(BlockDevice *dev, uint32_t dev_index, IoRequest req,
                  IoCallback cb)
{
    if (!policy_.enabled) {
        dev->submit(std::move(req), std::move(cb));
        return;
    }
    auto st = std::make_shared<OpState>();
    st->dev = dev;
    st->idx = dev_index;
    st->orig = std::move(req);
    st->active = st->orig;
    st->cb = std::move(cb);
    st->first_submit = loop_->now();
    issue(st);
}

void
IoRetrier::issue(const std::shared_ptr<OpState> &st)
{
    st->attempts++;
    uint64_t id = ++st->cur;
    if (policy_.io_deadline > 0) {
        loop_->schedule_after(policy_.io_deadline, "retry.deadline",
                              [this, st, id] {
            if (st->done || st->cur != id)
                return;
            // The attempt outlived the watchdog: count a timeout,
            // invalidate its eventual completion, and retry.
            if (timeouts_)
                (*timeouts_)++;
            if (health_)
                health_->record_timeout(st->idx);
            st->cur++;
            handle_retryable(
                st, Status(StatusCode::kIoError, "io deadline exceeded"));
        });
    }
    st->dev->submit(IoRequest(st->active), [this, st, id](IoResult r) {
        if (st->done || st->cur != id)
            return; // superseded by the watchdog
        on_complete(st, std::move(r));
    });
}

void
IoRetrier::on_complete(const std::shared_ptr<OpState> &st, IoResult r)
{
    if (r.status.is_ok()) {
        if (health_)
            health_->record_success(st->idx, r.latency());
        if (st->synth_flush) {
            // The write's payload already landed; the flush made it
            // durable. Report success for the original command.
            IoResult out;
            out.status = Status::ok();
            out.lba = st->orig.slba;
            out.submit_tick = st->first_submit;
            out.complete_tick = r.complete_tick;
            finish(st, std::move(out));
            return;
        }
        r.submit_tick = st->first_submit;
        finish(st, std::move(r));
        return;
    }

    StatusCode code = r.status.code();
    if (code == StatusCode::kIoError || code == StatusCode::kBusy) {
        if (health_)
            health_->record_error(st->idx);
        handle_retryable(st, r.status);
        return;
    }
    if (code == StatusCode::kWritePointerMismatch &&
        st->orig.op == IoOp::kWrite && st->dev->geometry().zoned) {
        // Self-inflicted ordering under concurrent retries, not a
        // device fault: probe the zone and resubmit what is missing,
        // without consuming the transient budget.
        if (st->attempts >= policy_.attempt_cap) {
            exhaust(st, r.status);
            return;
        }
        loop_->schedule_after(backoff_for(1), "retry.backoff", [this, st] {
            if (!st->done)
                prepare_attempt(st);
        });
        return;
    }
    // Non-retryable (kOffline, kInvalidArgument, kNoSpace, ...): the
    // caller decides what it means.
    r.submit_tick = st->first_submit;
    finish(st, std::move(r));
}

void
IoRetrier::handle_retryable(const std::shared_ptr<OpState> &st, Status why)
{
    if (st->transient >= policy_.max_transient_retries ||
        st->attempts >= policy_.attempt_cap) {
        exhaust(st, std::move(why));
        return;
    }
    st->transient++;
    if (retries_)
        (*retries_)++;
    loop_->schedule_after(backoff_for(st->transient), "retry.backoff",
                          [this, st] {
        if (!st->done)
            prepare_attempt(st);
    });
}

void
IoRetrier::prepare_attempt(const std::shared_ptr<OpState> &st)
{
    st->synth_flush = false;
    if (st->orig.op == IoOp::kWrite && st->dev->geometry().zoned) {
        const DeviceGeometry &g = st->dev->geometry();
        uint32_t zone = static_cast<uint32_t>(st->orig.slba / g.zone_size);
        auto zi = st->dev->zone_info(zone);
        if (!zi.is_ok()) {
            IoResult r;
            r.status = zi.status();
            r.submit_tick = st->first_submit;
            r.complete_tick = loop_->now();
            finish(st, std::move(r));
            return;
        }
        uint64_t wp = zi.value().wp;
        uint64_t end = st->orig.slba + st->orig.nsectors;
        if (wp >= end) {
            // Payload already on media (e.g. a torn write covered it,
            // or the error hit after the data landed).
            if (st->orig.fua) {
                st->active = IoRequest::flush();
                // Synthesized on behalf of the original write: the
                // flush inherits its provenance.
                st->active.cause = st->orig.cause;
                st->synth_flush = true;
                issue(st);
                return;
            }
            IoResult r;
            r.status = Status::ok();
            r.lba = st->orig.slba;
            r.submit_tick = st->first_submit;
            r.complete_tick = loop_->now();
            if (health_)
                health_->record_success(st->idx, 0);
            finish(st, std::move(r));
            return;
        }
        if (wp > st->orig.slba) {
            // Torn: resubmit only the missing tail.
            uint64_t skip = wp - st->orig.slba;
            st->active = st->orig;
            st->active.slba = wp;
            st->active.nsectors =
                st->orig.nsectors - static_cast<uint32_t>(skip);
            if (!st->orig.data.empty())
                st->active.data.assign(
                    st->orig.data.begin() +
                        static_cast<size_t>(skip) * kSectorSize,
                    st->orig.data.end());
            issue(st);
            return;
        }
        if (wp < st->orig.slba) {
            // An earlier sub-IO to this zone has not landed yet. Waiting
            // must not consume the attempt budget while the zone is
            // draining: under a deep write pipeline a whole queue of
            // successors parks behind one backing-off command, and the
            // time to drain scales with queue depth, not with this
            // command's own health. Only consecutive probes that find
            // the write pointer STUCK count toward exhaustion — a stuck
            // wp means the predecessor itself is failing, and its
            // outcome (not queue depth) bounds how long that lasts.
            bool progress = st->last_wp != UINT64_MAX && wp > st->last_wp;
            st->last_wp = wp;
            st->stalls = progress ? 0 : st->stalls + 1;
            if (st->stalls > policy_.attempt_cap) {
                exhaust(st, Status(StatusCode::kWritePointerMismatch,
                                   "predecessor never landed"));
                return;
            }
            // Probe interval backs off (bounded) so a stalled queue
            // outlives the predecessor's worst-case retry backoff.
            loop_->schedule_after(backoff_for(std::min(st->stalls, 4u)),
                                  [this, st] {
                                      if (!st->done)
                                          prepare_attempt(st);
                                  });
            return;
        }
        // wp == slba: full resubmit.
    }
    st->active = st->orig;
    issue(st);
}

void
IoRetrier::exhaust(const std::shared_ptr<OpState> &st, Status why)
{
    if (health_)
        health_->record_op_failure(st->idx);
    IoResult r;
    r.status = why.is_ok()
                   ? Status(StatusCode::kIoError, "retries exhausted")
                   : std::move(why);
    r.submit_tick = st->first_submit;
    r.complete_tick = loop_->now();
    finish(st, std::move(r));
}

void
IoRetrier::finish(const std::shared_ptr<OpState> &st, IoResult r)
{
    st->done = true;
    IoCallback cb = std::move(st->cb);
    st->cb = nullptr;
    cb(std::move(r));
}

} // namespace raizn
