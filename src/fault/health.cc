#include "fault/health.h"

#include <algorithm>

namespace raizn {

HealthMonitor::HealthMonitor(uint32_t num_devices, HealthConfig cfg)
    : cfg_(cfg), devs_(num_devices), fired_(num_devices)
{
}

void
HealthMonitor::record_success(uint32_t dev, Tick latency)
{
    DeviceHealth &h = devs_[dev];
    h.successes++;
    h.consec_errors = 0;
    h.consec_timeouts = 0;
    if (h.ewma_latency_ns == 0.0)
        h.ewma_latency_ns = static_cast<double>(latency);
    else
        h.ewma_latency_ns =
            cfg_.ewma_alpha * static_cast<double>(latency) +
            (1.0 - cfg_.ewma_alpha) * h.ewma_latency_ns;
    if (escalate_ && !fired_[dev].fail_slow && fail_slow(dev)) {
        fired_[dev].fail_slow = true;
        escalate_(dev, HealthEvent::kFailSlow);
    }
}

void
HealthMonitor::record_error(uint32_t dev)
{
    devs_[dev].errors++;
    devs_[dev].consec_errors++;
    maybe_escalate(dev);
}

void
HealthMonitor::record_timeout(uint32_t dev)
{
    devs_[dev].timeouts++;
    devs_[dev].consec_timeouts++;
    maybe_escalate(dev);
}

void
HealthMonitor::record_op_failure(uint32_t dev)
{
    devs_[dev].op_failures++;
    maybe_escalate(dev);
}

bool
HealthMonitor::suspect(uint32_t dev) const
{
    const DeviceHealth &h = devs_[dev];
    return h.consec_errors >= (cfg_.error_threshold + 1) / 2 ||
           h.consec_timeouts >= (cfg_.timeout_threshold + 1) / 2;
}

void
HealthMonitor::maybe_escalate(uint32_t dev)
{
    if (!escalate_)
        return;
    if (!fired_[dev].suspect && suspect(dev)) {
        fired_[dev].suspect = true;
        escalate_(dev, HealthEvent::kSuspect);
    }
    if (!fired_[dev].failed && should_fail(dev)) {
        fired_[dev].failed = true;
        escalate_(dev, HealthEvent::kFailed);
    }
}

void
HealthMonitor::reset_device(uint32_t dev)
{
    devs_[dev] = DeviceHealth{};
    fired_[dev] = Fired{};
}

bool
HealthMonitor::should_fail(uint32_t dev) const
{
    const DeviceHealth &h = devs_[dev];
    return h.op_failures >= cfg_.failed_op_threshold ||
           h.consec_errors >= cfg_.error_threshold ||
           h.consec_timeouts >= cfg_.timeout_threshold;
}

bool
HealthMonitor::fail_slow(uint32_t dev) const
{
    const DeviceHealth &h = devs_[dev];
    if (h.successes < cfg_.min_samples || h.ewma_latency_ns <= 0.0)
        return false;
    // Median latency EWMA of the peers that have enough samples.
    std::vector<double> peers;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (d == dev || devs_[d].successes < cfg_.min_samples)
            continue;
        if (devs_[d].ewma_latency_ns > 0.0)
            peers.push_back(devs_[d].ewma_latency_ns);
    }
    if (peers.empty())
        return false;
    std::sort(peers.begin(), peers.end());
    double median = peers[peers.size() / 2];
    return h.ewma_latency_ns > cfg_.slow_factor * median;
}

} // namespace raizn
