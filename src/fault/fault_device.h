/**
 * @file
 * Transient-fault injection decorator over BlockDevice. Wraps a real
 * (emulated) device and injects deterministic, seeded faults between
 * the host and the device:
 *
 *   - transient read/write errors (kIoError) that never reach the
 *     device, so no state changes — a retry can succeed
 *   - transient zone-state errors (kBusy) on writes/appends and zone
 *     management commands, modeling ZNS "unwritten contract"
 *     violations (zone busy / too many active resources)
 *   - torn multi-sector writes: a prefix of the payload reaches the
 *     media, the rest does not, and the command reports kIoError —
 *     the write pointer advances by the prefix only
 *   - silent bit-flips on read: the command succeeds but one
 *     deterministic bit of the returned payload is flipped
 *   - fail-slow behavior: a latency multiplier on every completion
 *     plus occasional "stuck" commands delayed long enough to trip
 *     the host's I/O deadline watchdog
 *
 * All decisions come from one xoshiro RNG seeded per device; a fixed
 * number of samples is drawn per submitted command regardless of which
 * branches trigger, so fault schedules are stable under config changes
 * that only toggle rates.
 */
#pragma once

#include <cstdint>
#include <deque>

#include "common/rng.h"
#include "zns/block_device.h"

namespace raizn {

class EventLoop;

/// Per-device fault rates and timing knobs. All rates in [0,1].
struct FaultConfig {
    uint64_t seed = 0xfa017ULL;
    double read_error_rate = 0.0;
    double write_error_rate = 0.0; ///< writes, appends, flushes
    double zone_error_rate = 0.0; ///< kBusy on write/append/zone mgmt
    double torn_write_rate = 0.0; ///< multi-sector kWrite only
    double bitflip_rate = 0.0; ///< silent corruption of read payloads
    double latency_multiplier = 1.0; ///< >1 models a fail-slow device
    double stuck_rate = 0.0; ///< probability a command hangs
    Tick stuck_delay = 50 * kNsPerMs; ///< extra delay for stuck commands
    Tick error_latency = 20 * kNsPerUs; ///< service time of injected errors

    bool
    any() const
    {
        return read_error_rate > 0 || write_error_rate > 0 ||
               zone_error_rate > 0 || torn_write_rate > 0 ||
               bitflip_rate > 0 || latency_multiplier > 1.0 ||
               stuck_rate > 0;
    }
};

/// One-shot targeted injections for tests.
enum class FaultKind : uint8_t {
    kIoError,
    kZoneBusy,
    kTornWrite,
    kBitflip,
    kStuck,
};

/// Cumulative injection counters.
struct FaultStats {
    uint64_t ops = 0;
    uint64_t read_errors = 0;
    uint64_t write_errors = 0;
    uint64_t zone_errors = 0;
    uint64_t torn_writes = 0;
    uint64_t bitflips = 0;
    uint64_t stuck_ios = 0;

    /// Name/value enumeration — single source of truth for metrics-
    /// registry linkage (obs::link_stats) and rendering.
    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("ops", ops);
        fn("read_errors", read_errors);
        fn("write_errors", write_errors);
        fn("zone_errors", zone_errors);
        fn("torn_writes", torn_writes);
        fn("bitflips", bitflips);
        fn("stuck_ios", stuck_ios);
    }
};

/**
 * BlockDevice decorator injecting the faults above. Geometry, stats,
 * zone reporting, and failure state all pass through to the inner
 * device; only submit() is intercepted. When the inner device has
 * failed() no faults are injected, so kOffline semantics (immediate
 * failure detection) are preserved.
 */
class FaultInjectingDevice : public BlockDevice
{
  public:
    FaultInjectingDevice(EventLoop *loop, BlockDevice *inner,
                         FaultConfig config);

    const DeviceGeometry &geometry() const override
    {
        return inner_->geometry();
    }
    const DeviceStats &stats() const override { return inner_->stats(); }
    DataMode data_mode() const override { return inner_->data_mode(); }

    void submit(IoRequest req, IoCallback cb) override;
    Result<ZoneInfo> zone_info(uint32_t zone_index) const override
    {
        return inner_->zone_info(zone_index);
    }

    bool failed() const override { return inner_->failed(); }
    void fail() override { inner_->fail(); }

    /// The inner device does the recording (injected errors never
    /// reach it, so they are not counted — matching its stats).
    void
    set_ledger(obs::IoLedger *ledger, uint32_t dev_index) override
    {
        inner_->set_ledger(ledger, dev_index);
    }

    BlockDevice *underlying() const { return inner_; }
    const FaultStats &fault_stats() const { return fstats_; }
    const FaultConfig &config() const { return config_; }

    /// Re-binds the wrapper to a (new) event loop after power_cut.
    void reattach(EventLoop *loop) { loop_ = loop; }

    /// Queues a one-shot fault applied to the next command whose op
    /// matches `op` (kBitflip pairs with kRead, kTornWrite/kZoneBusy
    /// with kWrite, etc.). Ignores the random rates for that command.
    void inject_once(IoOp op, FaultKind kind);

  private:
    struct Draw {
        double err, zone, torn, flip, stuck;
    };
    Draw draw();
    bool take_injection(IoOp op, FaultKind kind);
    void deliver(IoCallback cb, IoResult r, Tick extra);

    EventLoop *loop_;
    BlockDevice *inner_;
    FaultConfig config_;
    Rng rng_;
    FaultStats fstats_;
    std::deque<std::pair<IoOp, FaultKind>> one_shots_;
};

} // namespace raizn
