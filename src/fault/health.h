/**
 * @file
 * Per-device health tracking. The volume reports every device-level
 * outcome here (success + latency, transient error, watchdog timeout,
 * exhausted retry budget); the monitor decides when the accumulated
 * evidence crosses the failure threshold and flags fail-slow devices
 * by comparing latency EWMAs across array members.
 *
 * Escalation policy: should_fail() trips on any exhausted operation
 * (the retrier already spent its bounded budget — the md-raid rule of
 * kicking a member on a persistent write error generalizes here), or
 * on a run of consecutive timeouts / transient errors even if
 * individual operations kept scraping through. fail_slow() is
 * advisory: it detects a member whose latency EWMA is a configurable
 * factor above its peers, which operators drain proactively but which
 * does not by itself fail the device.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"

namespace raizn {

struct HealthConfig {
    uint32_t failed_op_threshold = 1; ///< exhausted ops before failure
    uint32_t error_threshold = 12; ///< consecutive transient errors
    uint32_t timeout_threshold = 6; ///< consecutive watchdog timeouts
    double ewma_alpha = 0.2; ///< latency EWMA smoothing
    double slow_factor = 8.0; ///< EWMA ratio vs. peers => fail-slow
    uint32_t min_samples = 16; ///< samples before fail-slow verdicts
};

/// Snapshot of one device's health counters.
struct DeviceHealth {
    uint64_t successes = 0;
    uint64_t errors = 0; ///< transient errors (retried)
    uint64_t timeouts = 0; ///< watchdog deadline expirations
    uint64_t op_failures = 0; ///< operations that exhausted retries
    uint32_t consec_errors = 0;
    uint32_t consec_timeouts = 0;
    double ewma_latency_ns = 0.0;

    /// Enumerates the 64-bit counters for metrics linkage
    /// (obs::link_stats) — the field list here is the single source of
    /// truth for the "raizn.health.dev<i>.*" metric names.
    template <typename Fn>
    void
    for_each_field(Fn &&fn) const
    {
        fn("successes", successes);
        fn("errors", errors);
        fn("timeouts", timeouts);
        fn("op_failures", op_failures);
    }
};

/// Lifecycle escalation events emitted by the monitor, edge-triggered
/// (at most once per device per kind until the device is reset).
enum class HealthEvent : uint32_t {
    kSuspect = 0, ///< halfway to a failure threshold
    kFailed = 1, ///< should_fail() now true
    kFailSlow = 2, ///< latency EWMA far above peers (advisory)
};

class HealthMonitor
{
  public:
    /// Called synchronously from the record_* path when a device
    /// crosses an escalation edge. Keep it cheap; heavy reactions
    /// (failover, rebuild kick-off) should defer to the event loop.
    using EscalationCb = std::function<void(uint32_t dev, HealthEvent ev)>;

    explicit HealthMonitor(uint32_t num_devices, HealthConfig cfg = {});

    void record_success(uint32_t dev, Tick latency);
    void record_error(uint32_t dev);
    void record_timeout(uint32_t dev);
    void record_op_failure(uint32_t dev);

    /// True once the evidence warrants mark_device_failed().
    bool should_fail(uint32_t dev) const;

    /// True if `dev` is healthy-but-slow relative to its peers.
    bool fail_slow(uint32_t dev) const;

    void set_escalation(EscalationCb cb) { escalate_ = std::move(cb); }

    /// Clears edge-trigger state (and counters) for `dev`, e.g. after
    /// a spare is promoted into the slot.
    void reset_device(uint32_t dev);

    /// True if the advisory fail-slow edge has fired for `dev`.
    bool fail_slow_flagged(uint32_t dev) const
    {
        return dev < fired_.size() && fired_[dev].fail_slow;
    }

    const DeviceHealth &device(uint32_t dev) const { return devs_[dev]; }
    const HealthConfig &config() const { return cfg_; }

  private:
    struct Fired {
        bool suspect = false;
        bool failed = false;
        bool fail_slow = false;
    };

    bool suspect(uint32_t dev) const;
    void maybe_escalate(uint32_t dev);

    HealthConfig cfg_;
    std::vector<DeviceHealth> devs_;
    std::vector<Fired> fired_;
    EscalationCb escalate_;
};

} // namespace raizn
