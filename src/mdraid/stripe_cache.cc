#include "mdraid/stripe_cache.h"

#include <algorithm>
#include <cassert>

namespace raizn {

bool
StripeCache::Entry::all_valid() const
{
    return std::all_of(valid.begin(), valid.end(),
                       [](bool v) { return v; });
}

StripeCache::StripeCache(uint64_t stripe_bytes, uint64_t capacity_bytes,
                         bool store)
    : stripe_bytes_(stripe_bytes),
      capacity_stripes_(std::max<uint64_t>(1, capacity_bytes /
                                                  stripe_bytes)),
      store_(store)
{
}

void
StripeCache::touch(uint64_t stripe)
{
    auto it = map_.find(stripe);
    assert(it != map_.end());
    lru_.erase(it->second.second);
    lru_.push_front(stripe);
    it->second.second = lru_.begin();
}

StripeCache::Entry *
StripeCache::find(uint64_t stripe)
{
    auto it = map_.find(stripe);
    if (it == map_.end()) {
        misses_++;
        return nullptr;
    }
    hits_++;
    touch(stripe);
    return &it->second.first;
}

StripeCache::Entry *
StripeCache::get_or_create(uint64_t stripe, uint64_t stripe_sectors)
{
    auto it = map_.find(stripe);
    if (it != map_.end()) {
        touch(stripe);
        return &it->second.first;
    }
    while (map_.size() >= capacity_stripes_) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
    }
    Entry e;
    e.stripe = stripe;
    if (store_)
        e.data.assign(stripe_bytes_, 0);
    e.valid.assign(stripe_sectors, false);
    lru_.push_front(stripe);
    auto [pos, inserted] =
        map_.emplace(stripe, std::make_pair(std::move(e), lru_.begin()));
    assert(inserted);
    return &pos->second.first;
}

void
StripeCache::invalidate(uint64_t stripe)
{
    auto it = map_.find(stripe);
    if (it == map_.end())
        return;
    lru_.erase(it->second.second);
    map_.erase(it);
}

} // namespace raizn
