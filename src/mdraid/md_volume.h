/**
 * @file
 * mdraid-like RAID-5 logical volume over conventional (block) SSDs:
 * the baseline the paper compares RAIZN against (§2.2, §6). Implements
 * chunked striping with rotating parity, a stripe cache that avoids
 * read-modify-write reads on partial writes, degraded reads/writes,
 * and whole-device resync after replacement. Configured without a
 * journal, exactly as in the paper's evaluation.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "array/zoned_array.h"
#include "fault/health.h"
#include "fault/retry.h"
#include "mdraid/stripe_cache.h"
#include "raizn/throttle.h"
#include "zns/block_device.h"

namespace raizn {

struct MdVolumeConfig {
    uint32_t chunk_sectors = 16; ///< 64 KiB chunks ("stripe units")
    uint64_t stripe_cache_bytes = 128 * kMiB; ///< md maximum (§6)
};

struct MdVolumeStats {
    uint64_t logical_reads = 0;
    uint64_t logical_writes = 0;
    uint64_t sectors_read = 0;
    uint64_t sectors_written = 0;
    uint64_t rmw_reads = 0; ///< read-modify-write preread sub-IOs
    uint64_t full_stripe_writes = 0;
    uint64_t partial_stripe_writes = 0;
    uint64_t degraded_reads = 0;
    uint64_t resynced_sectors = 0;
    uint64_t io_retries = 0; ///< transparent transient-error retries
    uint64_t io_timeouts = 0; ///< watchdog deadline expirations
    uint64_t dev_errors = 0; ///< device errors after retry exhaustion
    uint64_t auto_failovers = 0; ///< health-driven automatic failovers
    uint64_t spares_promoted = 0; ///< hot spares swapped into the array
    uint64_t resync_throttle_stalls = 0; ///< resync IOs delayed by the
                                         ///< token bucket

    /// Name/value enumeration — single source of truth for dump() and
    /// metrics-registry linkage (obs::link_stats).
    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("logical_reads", logical_reads);
        fn("logical_writes", logical_writes);
        fn("sectors_read", sectors_read);
        fn("sectors_written", sectors_written);
        fn("rmw_reads", rmw_reads);
        fn("full_stripe_writes", full_stripe_writes);
        fn("partial_stripe_writes", partial_stripe_writes);
        fn("degraded_reads", degraded_reads);
        fn("resynced_sectors", resynced_sectors);
        fn("io_retries", io_retries);
        fn("io_timeouts", io_timeouts);
        fn("dev_errors", dev_errors);
        fn("auto_failovers", auto_failovers);
        fn("spares_promoted", spares_promoted);
        fn("resync_throttle_stalls", resync_throttle_stalls);
    }

    /// One-line "key=value" rendering, same format as VolumeStats.
    std::string dump() const;
};

class MdVolume : public ZonedArray
{
  public:
    MdVolume(EventLoop *loop, std::vector<BlockDevice *> devs,
             MdVolumeConfig cfg);
    ~MdVolume() override;

    RaidMode mode() const override { return RaidMode::kMdraid; }
    uint32_t fault_tolerance() const override { return 1; }
    /// Conventional devices: random-access, no zones.
    bool zoned() const override { return false; }
    uint64_t capacity() const override { return capacity_; }
    uint32_t chunk_sectors() const { return cfg_.chunk_sectors; }
    uint64_t stripe_sectors() const { return stripe_sectors_; }

    void read(uint64_t lba, uint32_t nsectors, IoCallback cb) override;
    /// Random-access write (RAID-5 allows overwrites anywhere).
    void write(uint64_t lba, std::vector<uint8_t> data, IoCallback cb);
    void write_len(uint64_t lba, uint32_t nsectors, IoCallback cb);
    /// ZonedArray entry points; md has no FUA/PREFLUSH distinction
    /// (configured journal-less), so the flags are ignored.
    void
    write(uint64_t lba, std::vector<uint8_t> data, WriteFlags flags,
          IoCallback cb) override
    {
        (void)flags;
        write(lba, std::move(data), std::move(cb));
    }
    void
    write_len(uint64_t lba, uint32_t nsectors, WriteFlags flags,
              IoCallback cb) override
    {
        (void)flags;
        write_len(lba, nsectors, std::move(cb));
    }
    void flush(IoCallback cb) override;

    void mark_device_failed(uint32_t dev) override;
    int failed_device() const override { return failed_dev_; }

    using ZonedArray::set_resilience;
    /// Legacy knob form; same semantics as the ResilienceConfig one.
    void set_resilience(const RetryPolicy &retry,
                        const HealthConfig &health = HealthConfig{})
    {
        set_resilience(ResilienceConfig{retry, health});
    }

    /**
     * Failure-lifecycle policy, mirroring RaiznVolume::LifecycleConfig
     * (Fig. 12 MTTR parity): when a device is marked failed and a hot
     * spare is configured, the spare is promoted and a full resync
     * starts automatically, optionally rate-limited by `throttle`.
     */
    struct LifecycleConfig {
        bool auto_resync = true;
        RebuildThrottleConfig throttle;
        std::function<void(uint32_t dev, Status s)> on_resync_done;
    };
    void set_lifecycle(LifecycleConfig lc) { lifecycle_ = std::move(lc); }
    const LifecycleConfig &lifecycle() const { return lifecycle_; }
    /// Live token bucket while a resync is in flight (else null).
    const RebuildThrottle *resync_throttle() const
    {
        return throttle_.get();
    }

    /**
     * Resyncs a replaced device: reconstructs and rewrites the ENTIRE
     * device address space, regardless of how much user data exists —
     * mdraid cannot tell valid data apart (§6.2, Fig. 12).
     */
    void resync_device(uint32_t dev,
                       std::function<void(uint64_t, uint64_t)> progress,
                       StatusCb done);
    /// ZonedArray spelling of resync_device.
    void
    rebuild_device(uint32_t dev, ProgressCb progress,
                   StatusCb done) override
    {
        resync_device(dev, std::move(progress), std::move(done));
    }

    // attach_observability (inherited) links MdVolumeStats under
    // "mdraid.*", per-device DeviceStats + latency histograms under
    // "mdraid.dev<i>.*"; stage spans ("md.write", "md.rmw_read",
    // "md.chunk_write", "md.parity") go to the trace recorder.

    /**
     * Registers gauge-refresh probes on `tl`: per-device FTL state
     * under "mdraid.dev<i>.ftl.*" (free_blocks, op_used_pct,
     * gc_active) for members that are conventional devices — the
     * over-provisioning burn-down behind Fig. 10's collapse — plus
     * the stripe-cache occupancy under "mdraid.gauge.cache_stripes".
     * Requires attach_observability(reg, ...) first; call before
     * tl->start().
     */
    void install_timeline(obs::Timeline *tl) override;

    const MdVolumeStats &stats() const { return stats_; }
    const StripeCache &cache() const { return *cache_; }

    // Address math (exposed for tests).
    uint32_t parity_dev(uint64_t stripe) const;
    uint32_t data_dev(uint64_t stripe, uint32_t k) const;
    int data_pos_of_dev(uint64_t stripe, uint32_t dev) const;

  private:
    struct WriteCtx;

    void write_impl(uint64_t lba, std::vector<uint8_t> data,
                    uint32_t nsectors, IoCallback cb);
    void process_stripe_write(uint64_t stripe, uint64_t lo, uint64_t hi,
                              std::shared_ptr<std::vector<uint8_t>> data,
                              std::shared_ptr<WriteCtx> ctx);
    void write_chunks(uint64_t stripe, uint64_t lo, uint64_t hi,
                      const std::vector<uint8_t> &data,
                      const std::vector<uint8_t> &parity,
                      std::shared_ptr<WriteCtx> ctx);
    void read_chunk(uint64_t stripe, uint32_t k, uint64_t lo, uint64_t hi,
                    std::function<void(Status, std::vector<uint8_t>)> cb,
                    const char *trace_stage = nullptr, uint64_t treq = 0,
                    obs::Cause cause = obs::Cause::kUserData);
    void reconstruct_chunk(
        uint64_t stripe, int pos, uint64_t lo, uint64_t hi,
        std::function<void(Status, std::vector<uint8_t>)> cb);
    uint64_t chunk_pba(uint64_t stripe) const;
    bool store_data() const { return store_data_; }
    // dev_submit / escalate_dev_error are inherited from ZonedArray;
    // all device IO funnels through the retrier.
    /// Swaps the configured spare into slot `dev`.
    void promote_spare(uint32_t dev);
    /// Failover policy: promote the spare and start a background
    /// resync, deferred off the error path.
    void maybe_start_auto_resync(uint32_t dev);

    // ZonedArray hooks.
    std::string metric_prefix() const override { return "mdraid"; }
    void link_stats_hook(obs::MetricsRegistry &reg) override;
    /// Historical: mdraid never exposed per-device health counters.
    bool link_health_metrics() const override { return false; }

    MdVolumeConfig cfg_;
    uint64_t stripe_sectors_;
    uint64_t capacity_;
    std::unique_ptr<StripeCache> cache_;
    MdVolumeStats stats_;
    int failed_dev_ = -1;
    bool store_data_;

    // Failure lifecycle (set_lifecycle / set_spare).
    LifecycleConfig lifecycle_;
    std::unique_ptr<RebuildThrottle> throttle_;
    bool resyncing_ = false;
    double fg_write_ewma_ns_ = 0.0;
};

} // namespace raizn
