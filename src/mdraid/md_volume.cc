#include "mdraid/md_volume.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/prof/prof.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "raizn/stripe_buffer.h" // xor_bytes, parity_byte_range
#include "sim/event_loop.h"
#include "zns/conv_device.h"

namespace raizn {

std::string
MdVolumeStats::dump() const
{
    return obs::render_stats(*this);
}

struct MdVolume::WriteCtx {
    uint32_t pending = 0;
    bool issued_all = false;
    Status status;
    IoCallback cb;
    uint64_t end_lba = 0;
    uint64_t req_id = 0; ///< trace correlation id (0 when detached)
};

MdVolume::MdVolume(EventLoop *loop, std::vector<BlockDevice *> devs,
                   MdVolumeConfig cfg)
    : ZonedArray(loop, std::move(devs),
                 StatCells{&stats_.io_retries, &stats_.io_timeouts,
                           &stats_.dev_errors, &stats_.spares_promoted}),
      cfg_(cfg)
{
    assert(devs_.size() >= 3);
    uint32_t D = static_cast<uint32_t>(devs_.size()) - 1;
    stripe_sectors_ = static_cast<uint64_t>(D) * cfg_.chunk_sectors;
    uint64_t dev_sectors = devs_[0]->geometry().nsectors;
    // Round down to whole stripes.
    uint64_t stripes = dev_sectors / cfg_.chunk_sectors;
    capacity_ = stripes * stripe_sectors_;
    store_data_ = true;
    for (BlockDevice *d : devs_)
        store_data_ &= d->data_mode() == DataMode::kStore;
    cache_ = std::make_unique<StripeCache>(
        stripe_sectors_ * kSectorSize, cfg_.stripe_cache_bytes,
        store_data_);
}

MdVolume::~MdVolume() = default;

void
MdVolume::link_stats_hook(obs::MetricsRegistry &reg)
{
    obs::link_stats(reg, "mdraid", stats_);
}

void
MdVolume::install_timeline(obs::Timeline *tl)
{
    if (tl == nullptr || reg_ == nullptr)
        return;
    obs::Gauge *cache = reg_->gauge("mdraid.gauge.cache_stripes");
    struct FtlGauges {
        obs::Gauge *free_blocks;
        obs::Gauge *op_used_pct;
        obs::Gauge *gc_active;
    };
    std::vector<FtlGauges> ftl;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        std::string prefix = strprintf("mdraid.dev%u.ftl", d);
        ftl.push_back({reg_->gauge(prefix + ".free_blocks"),
                       reg_->gauge(prefix + ".op_used_pct"),
                       reg_->gauge(prefix + ".gc_active")});
    }
    tl->add_probe([this, cache, ftl = std::move(ftl)] {
        cache->set(cache_->size());
        // Re-resolved per sample: promote_spare swaps pointers, and a
        // member may be a decorator that is not a ConvDevice.
        for (uint32_t d = 0; d < devs_.size(); ++d) {
            auto *cd = dynamic_cast<ConvDevice *>(devs_[d]);
            if (cd == nullptr)
                continue;
            ftl[d].free_blocks->set(cd->ftl().free_blocks());
            ftl[d].op_used_pct->set(cd->ftl().op_used_pct());
            ftl[d].gc_active->set(cd->ftl().gc_active() ? 1 : 0);
        }
    });
}

uint32_t
MdVolume::parity_dev(uint64_t stripe) const
{
    // Left-symmetric rotation, as md's default raid5 layout.
    uint32_t n = static_cast<uint32_t>(devs_.size());
    return static_cast<uint32_t>((n - 1 - stripe % n) % n);
}

uint32_t
MdVolume::data_dev(uint64_t stripe, uint32_t k) const
{
    uint32_t n = static_cast<uint32_t>(devs_.size());
    return (parity_dev(stripe) + 1 + k) % n;
}

int
MdVolume::data_pos_of_dev(uint64_t stripe, uint32_t dev) const
{
    uint32_t n = static_cast<uint32_t>(devs_.size());
    uint32_t p = parity_dev(stripe);
    if (dev == p)
        return -1;
    return static_cast<int>((dev + n - p - 1) % n);
}

uint64_t
MdVolume::chunk_pba(uint64_t stripe) const
{
    return stripe * cfg_.chunk_sectors;
}

// ---- Read path --------------------------------------------------------

void
MdVolume::read_chunk(uint64_t stripe, uint32_t k, uint64_t lo,
                     uint64_t hi,
                     std::function<void(Status, std::vector<uint8_t>)> cb,
                     const char *trace_stage, uint64_t treq,
                     obs::Cause cause)
{
    uint32_t dev = data_dev(stripe, k);
    if (static_cast<int>(dev) == failed_dev_ || devs_[dev]->failed()) {
        reconstruct_chunk(stripe, static_cast<int>(k), lo, hi,
                          std::move(cb));
        return;
    }
    IoRequest rreq = IoRequest::read(chunk_pba(stripe) + lo,
                                     static_cast<uint32_t>(hi - lo));
    rreq.trace_req = treq;
    rreq.trace_stage = trace_stage;
    rreq.cause = cause;
    dev_submit(dev, std::move(rreq),
               [this, stripe, k, lo, hi, dev,
                cb = std::move(cb)](IoResult r) mutable {
                   if (!r.status.is_ok() &&
                       escalate_dev_error(dev, r.status)) {
                       // Member failed after retries: serve the read
                       // from the surviving devices instead.
                       reconstruct_chunk(stripe, static_cast<int>(k),
                                         lo, hi, std::move(cb));
                       return;
                   }
                   cb(r.status, std::move(r.data));
               });
}

void
MdVolume::reconstruct_chunk(
    uint64_t stripe, int pos, uint64_t lo, uint64_t hi,
    std::function<void(Status, std::vector<uint8_t>)> cb)
{
    stats_.degraded_reads++;
    uint32_t D = static_cast<uint32_t>(devs_.size()) - 1;
    struct Ctx {
        uint32_t pending = 0;
        bool issued_all = false;
        Status status;
        std::vector<uint8_t> acc;
        std::function<void(Status, std::vector<uint8_t>)> cb;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->cb = std::move(cb);
    ctx->acc.assign(static_cast<size_t>(hi - lo) * kSectorSize, 0);
    auto one = [this, ctx](Status s, const std::vector<uint8_t> &d) {
        if (!s.is_ok() && ctx->status.is_ok())
            ctx->status = s;
        if (!d.empty() && store_data_)
            xor_bytes(ctx->acc.data(), d.data(),
                      std::min(d.size(), ctx->acc.size()));
        if (--ctx->pending == 0 && ctx->issued_all) {
            auto cb2 = std::move(ctx->cb);
            cb2(ctx->status, std::move(ctx->acc));
        }
    };
    auto read_dev = [&](uint32_t dev) {
        ctx->pending++;
        IoRequest rreq = IoRequest::read(chunk_pba(stripe) + lo,
                                         static_cast<uint32_t>(hi - lo));
        // Peer reads that exist only to rebuild a lost chunk are
        // redundancy traffic, not user reads.
        rreq.cause = obs::Cause::kParity;
        dev_submit(dev, std::move(rreq),
                   [this, one, dev](IoResult r) {
                       if (!r.status.is_ok())
                           escalate_dev_error(dev, r.status);
                       one(r.status, r.data);
                   });
    };
    for (uint32_t k = 0; k < D; ++k) {
        if (static_cast<int>(k) == pos)
            continue;
        uint32_t dev = data_dev(stripe, k);
        if (static_cast<int>(dev) == failed_dev_ ||
            devs_[dev]->failed()) {
            ctx->status = Status(StatusCode::kIoError, "double failure");
            continue;
        }
        read_dev(dev);
    }
    if (pos >= 0) {
        uint32_t pdev = parity_dev(stripe);
        if (static_cast<int>(pdev) == failed_dev_ ||
            devs_[pdev]->failed()) {
            ctx->status = Status(StatusCode::kIoError, "double failure");
        } else {
            read_dev(pdev);
        }
    }
    ctx->issued_all = true;
    if (ctx->pending == 0) {
        auto cb2 = std::move(ctx->cb);
        loop_->schedule_after(1, [cb2 = std::move(cb2), ctx]() mutable {
            cb2(ctx->status, std::move(ctx->acc));
        });
    }
}

void
MdVolume::read(uint64_t lba, uint32_t nsectors, IoCallback cb)
{
    PROF_SCOPE("md.read");
    if (nsectors == 0 || lba + nsectors > capacity_) {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            IoResult r;
            r.status = Status(StatusCode::kInvalidArgument, "read range");
            cb(std::move(r));
        });
        return;
    }
    stats_.logical_reads++;
    stats_.sectors_read += nsectors;
    if (ledger_ != nullptr) {
        cb = [this, nsectors, inner = std::move(cb)](IoResult r) {
            if (r.status.is_ok())
                ledger_->note_user_read(nsectors);
            inner(std::move(r));
        };
    }

    uint64_t treq = 0;
    if (trace_ != nullptr || read_lat_ != nullptr) {
        uint64_t token = 0;
        if (trace_ != nullptr) {
            treq = trace_->next_request_id();
            token = trace_->begin_span("md.read", treq,
                                       obs::kTrackRequest, loop_->now());
        }
        Tick t0 = loop_->now();
        cb = [this, token, t0, inner = std::move(cb)](IoResult r) {
            Tick now = loop_->now();
            if (trace_ != nullptr && token != 0)
                trace_->end_span(token, now);
            if (read_lat_ != nullptr)
                read_lat_->record(now - t0);
            inner(std::move(r));
        };
    }

    struct Ctx {
        uint32_t pending = 0;
        bool issued_all = false;
        Status status;
        std::vector<uint8_t> out;
        IoCallback cb;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->cb = std::move(cb);
    if (store_data_)
        ctx->out.assign(static_cast<size_t>(nsectors) * kSectorSize, 0);

    uint64_t cur = lba;
    uint64_t end = lba + nsectors;
    while (cur < end) {
        uint64_t stripe = cur / stripe_sectors_;
        uint64_t in_stripe = cur % stripe_sectors_;
        uint32_t k = static_cast<uint32_t>(in_stripe / cfg_.chunk_sectors);
        uint64_t lo = in_stripe % cfg_.chunk_sectors;
        uint64_t len = std::min<uint64_t>(end - cur,
                                          cfg_.chunk_sectors - lo);
        uint64_t out_off = (cur - lba) * kSectorSize;
        ctx->pending++;
        read_chunk(stripe, k, lo, lo + len,
                   [this, ctx, out_off](Status s,
                                        std::vector<uint8_t> data) {
                       if (!s.is_ok() && ctx->status.is_ok())
                           ctx->status = s;
                       if (!data.empty() && !ctx->out.empty()) {
                           std::memcpy(ctx->out.data() + out_off,
                                       data.data(),
                                       std::min(data.size(),
                                                ctx->out.size() -
                                                    out_off));
                       }
                       if (--ctx->pending == 0 && ctx->issued_all) {
                           IoResult r;
                           r.status = ctx->status;
                           r.data = std::move(ctx->out);
                           auto cb2 = std::move(ctx->cb);
                           cb2(std::move(r));
                       }
                       (void)this;
                   },
                   "md.read_chunk", treq);
        cur += len;
    }
    ctx->issued_all = true;
    if (ctx->pending == 0) {
        loop_->schedule_after(1, [ctx] {
            IoResult r;
            r.status = ctx->status;
            r.data = std::move(ctx->out);
            auto cb2 = std::move(ctx->cb);
            cb2(std::move(r));
        });
    }
}

// ---- Write path -------------------------------------------------------

void
MdVolume::write(uint64_t lba, std::vector<uint8_t> data, IoCallback cb)
{
    uint32_t nsectors = static_cast<uint32_t>(data.size() / kSectorSize);
    write_impl(lba, std::move(data), nsectors, std::move(cb));
}

void
MdVolume::write_len(uint64_t lba, uint32_t nsectors, IoCallback cb)
{
    write_impl(lba, {}, nsectors, std::move(cb));
}

void
MdVolume::write_impl(uint64_t lba, std::vector<uint8_t> data,
                     uint32_t nsectors, IoCallback cb)
{
    if (nsectors == 0 || lba + nsectors > capacity_) {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            IoResult r;
            r.status = Status(StatusCode::kInvalidArgument, "write range");
            cb(std::move(r));
        });
        return;
    }
    stats_.logical_writes++;
    stats_.sectors_written += nsectors;

    auto ctx = std::make_shared<WriteCtx>();
    ctx->cb = std::move(cb);
    ctx->end_lba = lba + nsectors;
    if (ledger_ != nullptr) {
        ctx->cb = [this, nsectors, inner = std::move(ctx->cb)](IoResult r) {
            if (r.status.is_ok())
                ledger_->note_user_write(nsectors);
            inner(std::move(r));
        };
    }
    // Foreground-latency feedback for the adaptive resync throttle.
    ctx->cb = [this, t0 = loop_->now(),
               inner = std::move(ctx->cb)](IoResult r) {
        uint64_t elapsed = loop_->now() - t0;
        fg_write_ewma_ns_ = fg_write_ewma_ns_ == 0.0
            ? static_cast<double>(elapsed)
            : 0.2 * static_cast<double>(elapsed) +
                0.8 * fg_write_ewma_ns_;
        if (throttle_ != nullptr && resyncing_)
            throttle_->observe_foreground_latency(elapsed);
        inner(std::move(r));
    };
    if (trace_ != nullptr || write_lat_ != nullptr) {
        uint64_t token = 0;
        if (trace_ != nullptr) {
            ctx->req_id = trace_->next_request_id();
            token = trace_->begin_span("md.write", ctx->req_id,
                                       obs::kTrackRequest, loop_->now());
        }
        Tick t0 = loop_->now();
        ctx->cb = [this, token, t0,
                   inner = std::move(ctx->cb)](IoResult r) {
            Tick now = loop_->now();
            if (trace_ != nullptr && token != 0)
                trace_->end_span(token, now);
            if (write_lat_ != nullptr)
                write_lat_->record(now - t0);
            inner(std::move(r));
        };
    }

    uint64_t cur = lba;
    uint64_t end = lba + nsectors;
    while (cur < end) {
        uint64_t stripe = cur / stripe_sectors_;
        uint64_t lo = cur % stripe_sectors_;
        uint64_t hi = std::min<uint64_t>(end - stripe * stripe_sectors_,
                                         stripe_sectors_);
        // Each stripe owns a copy of its slice: prereads complete
        // asynchronously, after this request's buffer is gone.
        auto slice = std::make_shared<std::vector<uint8_t>>();
        if (!data.empty()) {
            const uint8_t *p = data.data() + (cur - lba) * kSectorSize;
            slice->assign(p, p + (stripe * stripe_sectors_ + hi - cur) *
                                 kSectorSize);
        }
        process_stripe_write(stripe, lo, hi, std::move(slice), ctx);
        cur = stripe * stripe_sectors_ + hi;
    }
    ctx->issued_all = true;
    if (ctx->pending == 0) {
        loop_->schedule_after(1, [ctx] {
            IoResult r;
            r.status = ctx->status;
            auto cb2 = std::move(ctx->cb);
            cb2(std::move(r));
        });
    }
}

void
MdVolume::process_stripe_write(uint64_t stripe, uint64_t lo, uint64_t hi,
                               std::shared_ptr<std::vector<uint8_t>> data,
                               std::shared_ptr<WriteCtx> ctx)
{
    PROF_SCOPE("md.write");
    StripeCache::Entry *entry =
        cache_->get_or_create(stripe, stripe_sectors_);
    // Apply the new data to the cache image.
    if (store_data_ && !data->empty()) {
        std::memcpy(entry->data.data() + lo * kSectorSize, data->data(),
                    static_cast<size_t>(hi - lo) * kSectorSize);
        prof::count_copy((hi - lo) * kSectorSize);
    }
    for (uint64_t s = lo; s < hi; ++s)
        entry->valid[s] = true;

    bool full = (lo == 0 && hi == stripe_sectors_);
    if (full) {
        stats_.full_stripe_writes++;
        std::vector<uint8_t> parity;
        if (store_data_) {
            prof::count_alloc(
                static_cast<uint64_t>(cfg_.chunk_sectors) * kSectorSize);
            parity.assign(
                static_cast<size_t>(cfg_.chunk_sectors) * kSectorSize, 0);
            uint32_t D = static_cast<uint32_t>(devs_.size()) - 1;
            for (uint32_t k = 0; k < D; ++k) {
                xor_bytes(parity.data(),
                          entry->data.data() +
                              static_cast<uint64_t>(k) *
                                  cfg_.chunk_sectors * kSectorSize,
                          parity.size());
            }
        }
        write_chunks(stripe, lo, hi, *data, parity, ctx);
        return;
    }

    stats_.partial_stripe_writes++;
    if (entry->all_valid()) {
        // Stripe cache hit: parity recomputed from the cached stripe,
        // no preread (md's stripe-cache benefit).
        std::vector<uint8_t> parity;
        if (store_data_) {
            prof::count_alloc(
                static_cast<uint64_t>(cfg_.chunk_sectors) * kSectorSize);
            parity.assign(
                static_cast<size_t>(cfg_.chunk_sectors) * kSectorSize, 0);
            uint32_t D = static_cast<uint32_t>(devs_.size()) - 1;
            for (uint32_t k = 0; k < D; ++k) {
                xor_bytes(parity.data(),
                          entry->data.data() +
                              static_cast<uint64_t>(k) *
                                  cfg_.chunk_sectors * kSectorSize,
                          parity.size());
            }
        }
        write_chunks(stripe, lo, hi, *data, parity, ctx);
        return;
    }

    // Read-modify-write: preread the rest of the stripe, then compute
    // parity over the merged image. (md prereads either the untouched
    // chunks or old-data+old-parity, whichever is fewer IOs; reading
    // the complement is equivalent work for our 5-device arrays.)
    struct Rmw {
        uint32_t pending = 0;
        bool issued_all = false;
        std::vector<uint8_t> image; ///< merged stripe data
        Status status;
    };
    auto rmw = std::make_shared<Rmw>();
    if (store_data_) {
        rmw->image.assign(stripe_sectors_ * kSectorSize, 0);
        if (!data->empty()) {
            std::memcpy(rmw->image.data() + lo * kSectorSize,
                        data->data(),
                        static_cast<size_t>(hi - lo) * kSectorSize);
        }
    }
    ctx->pending++; // holds the write until prereads finish

    auto finish_rmw = [this, stripe, lo, hi, data, ctx, rmw]() {
        std::vector<uint8_t> parity;
        if (store_data_) {
            prof::count_alloc(
                static_cast<uint64_t>(cfg_.chunk_sectors) * kSectorSize);
            parity.assign(
                static_cast<size_t>(cfg_.chunk_sectors) * kSectorSize, 0);
            uint32_t D = static_cast<uint32_t>(devs_.size()) - 1;
            for (uint32_t k = 0; k < D; ++k) {
                xor_bytes(parity.data(),
                          rmw->image.data() +
                              static_cast<uint64_t>(k) *
                                  cfg_.chunk_sectors * kSectorSize,
                          parity.size());
            }
            // Refresh the cache with the full image.
            StripeCache::Entry *e =
                cache_->get_or_create(stripe, stripe_sectors_);
            e->data = rmw->image;
            std::fill(e->valid.begin(), e->valid.end(), true);
        }
        if (!rmw->status.is_ok() && ctx->status.is_ok())
            ctx->status = rmw->status;
        write_chunks(stripe, lo, hi, *data, parity, ctx);
        // Release the preread hold.
        if (--ctx->pending == 0 && ctx->issued_all) {
            IoResult r;
            r.status = ctx->status;
            auto cb2 = std::move(ctx->cb);
            cb2(std::move(r));
        }
    };

    // Preread every invalid sector range outside [lo, hi).
    auto one_done = [this, rmw, finish_rmw](uint64_t off, Status s,
                                            const std::vector<uint8_t> &d) {
        if (!s.is_ok() && rmw->status.is_ok())
            rmw->status = s;
        if (!d.empty() && !rmw->image.empty()) {
            std::memcpy(rmw->image.data() + off * kSectorSize, d.data(),
                        d.size());
        }
        if (--rmw->pending == 0 && rmw->issued_all)
            finish_rmw();
        (void)this;
    };

    StripeCache::Entry *e = entry;
    uint64_t s = 0;
    while (s < stripe_sectors_) {
        if (e->valid[s]) {
            if (store_data_ && !(s >= lo && s < hi)) {
                std::memcpy(rmw->image.data() + s * kSectorSize,
                            e->data.data() + s * kSectorSize,
                            kSectorSize);
            }
            s++;
            continue;
        }
        // Extend an invalid run within one chunk.
        uint32_t k = static_cast<uint32_t>(s / cfg_.chunk_sectors);
        uint64_t run_end = std::min<uint64_t>(
            (k + 1ull) * cfg_.chunk_sectors, stripe_sectors_);
        uint64_t r = s;
        while (r < run_end && !e->valid[r])
            r++;
        uint64_t off = s;
        uint64_t in_chunk = s % cfg_.chunk_sectors;
        rmw->pending++;
        stats_.rmw_reads++;
        read_chunk(stripe, k, in_chunk, in_chunk + (r - s),
                   [one_done, off](Status st, std::vector<uint8_t> d) {
                       one_done(off, st, d);
                   },
                   "md.rmw_read", ctx->req_id, obs::Cause::kParity);
        // Mark as valid: the cache image will be refreshed on finish.
        for (uint64_t i = s; i < r; ++i)
            e->valid[i] = true;
        s = r;
    }
    rmw->issued_all = true;
    if (rmw->pending == 0)
        finish_rmw();
}

void
MdVolume::write_chunks(uint64_t stripe, uint64_t lo, uint64_t hi,
                       const std::vector<uint8_t> &data,
                       const std::vector<uint8_t> &parity,
                       std::shared_ptr<WriteCtx> ctx)
{
    auto chunk_done = [this, ctx](uint32_t dev, IoResult r) {
        if (!r.status.is_ok()) {
            // Persistent write error: md kicks the member and the
            // write completes degraded rather than failing.
            if (escalate_dev_error(dev, r.status))
                r.status = Status::ok();
        }
        if (!r.status.is_ok() && ctx->status.is_ok())
            ctx->status = r.status;
        if (--ctx->pending == 0 && ctx->issued_all) {
            IoResult out;
            out.status = ctx->status;
            auto cb2 = std::move(ctx->cb);
            cb2(std::move(out));
        }
    };

    // Data chunks.
    uint64_t cur = lo;
    while (cur < hi) {
        uint32_t k = static_cast<uint32_t>(cur / cfg_.chunk_sectors);
        uint64_t in_chunk = cur % cfg_.chunk_sectors;
        uint64_t len = std::min<uint64_t>(hi - cur,
                                          cfg_.chunk_sectors - in_chunk);
        uint32_t dev = data_dev(stripe, k);
        if (static_cast<int>(dev) != failed_dev_ &&
            !devs_[dev]->failed()) {
            IoRequest req;
            req.op = IoOp::kWrite;
            req.slba = chunk_pba(stripe) + in_chunk;
            req.nsectors = static_cast<uint32_t>(len);
            if (store_data_ && !data.empty()) {
                const uint8_t *p = data.data() + (cur - lo) * kSectorSize;
                req.data.assign(p,
                                p + static_cast<size_t>(len) * kSectorSize);
            }
            req.trace_req = ctx->req_id;
            req.trace_stage = "md.chunk_write";
            req.cause = obs::Cause::kUserData;
            ctx->pending++;
            dev_submit(dev, std::move(req),
                       [chunk_done, dev](IoResult r) {
                           chunk_done(dev, std::move(r));
                       });
        }
        cur += len;
    }

    // Parity chunk: only the affected byte range needs rewriting.
    uint32_t pdev = parity_dev(stripe);
    if (static_cast<int>(pdev) != failed_dev_ && !devs_[pdev]->failed()) {
        uint64_t plo, phi;
        parity_byte_range(lo, hi, cfg_.chunk_sectors, &plo, &phi);
        uint64_t plo_s = plo / kSectorSize;
        uint64_t phi_s = div_ceil(phi, kSectorSize);
        IoRequest req;
        req.op = IoOp::kWrite;
        req.slba = chunk_pba(stripe) + plo_s;
        req.nsectors = static_cast<uint32_t>(phi_s - plo_s);
        if (store_data_ && !parity.empty()) {
            req.data.assign(
                parity.begin() +
                    static_cast<ptrdiff_t>(plo_s * kSectorSize),
                parity.begin() +
                    static_cast<ptrdiff_t>(phi_s * kSectorSize));
        }
        req.trace_req = ctx->req_id;
        req.trace_stage = "md.parity";
        req.cause = obs::Cause::kParity;
        ctx->pending++;
        dev_submit(pdev, std::move(req),
                   [chunk_done, pdev](IoResult r) {
                       chunk_done(pdev, std::move(r));
                   });
    }
}

void
MdVolume::flush(IoCallback cb)
{
    auto pending = std::make_shared<uint32_t>(0);
    auto first = std::make_shared<Status>();
    auto done = [pending, first, cb = std::move(cb)](IoResult r) {
        if (!r.status.is_ok() && first->is_ok())
            *first = r.status;
        if (--*pending == 0) {
            IoResult out;
            out.status = *first;
            cb(std::move(out));
        }
    };
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (static_cast<int>(d) == failed_dev_ || devs_[d]->failed())
            continue;
        (*pending)++;
        IoRequest freq = IoRequest::flush();
        freq.cause = obs::Cause::kUserData;
        dev_submit(d, std::move(freq),
                   [this, done, d](IoResult r) mutable {
                       if (!r.status.is_ok() &&
                           escalate_dev_error(d, r.status)) {
                           r.status = Status::ok();
                       }
                       done(std::move(r));
                   });
    }
}

void
MdVolume::mark_device_failed(uint32_t dev)
{
    if (failed_dev_ < 0) {
        failed_dev_ = static_cast<int>(dev);
        if (!devs_[dev]->failed())
            devs_[dev]->fail();
        maybe_start_auto_resync(dev);
    }
}

void
MdVolume::promote_spare(uint32_t dev)
{
    promote_spare_base(dev);
    LOG_INFO("mdraid: hot spare promoted into slot %u", dev);
}

void
MdVolume::maybe_start_auto_resync(uint32_t dev)
{
    if (!lifecycle_.auto_resync || spare_ == nullptr ||
        failed_dev_ != static_cast<int>(dev)) {
        return;
    }
    if (spare_->failed() ||
        spare_->geometry().nsectors < devs_[dev]->geometry().nsectors) {
        LOG_ERROR("mdraid: spare unusable for slot %u", dev);
        return;
    }
    stats_.auto_failovers++;
    // Defer off the error path: mark_device_failed can run deep inside
    // an IO completion; the promotion + resync kick must not reenter.
    loop_->schedule_after(1, [this, dev, alive = alive_] {
        if (!*alive || failed_dev_ != static_cast<int>(dev) ||
            spare_ == nullptr) {
            return;
        }
        promote_spare(dev);
        resync_device(dev, nullptr, [this, dev, alive](Status s) {
            if (!*alive)
                return;
            if (!s.is_ok()) {
                LOG_ERROR("mdraid: automatic resync of slot %u failed: "
                          "%s",
                          dev, s.to_string().c_str());
            }
            if (lifecycle_.on_resync_done)
                lifecycle_.on_resync_done(dev, s);
        });
    });
}

} // namespace raizn
