/**
 * @file
 * Stripe cache for the mdraid-like RAID-5 baseline. Caches stripe
 * contents so partial-stripe writes can recompute parity without
 * read-modify-write disk reads, mirroring md's stripe cache (the paper
 * configures it at its 128 MiB maximum).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace raizn {

class StripeCache
{
  public:
    /**
     * @param stripe_bytes data bytes cached per stripe (D chunks)
     * @param capacity_bytes total cache budget
     * @param store whether payload bytes are kept (timing-only mode
     *        tracks presence without storing)
     */
    StripeCache(uint64_t stripe_bytes, uint64_t capacity_bytes,
                bool store);

    struct Entry {
        uint64_t stripe;
        /// Data bytes (D chunks); empty in timing-only mode.
        std::vector<uint8_t> data;
        /// Per-sector validity of the cached data.
        std::vector<bool> valid;
        bool all_valid() const;
    };

    /// Returns the entry for `stripe`, or nullptr when not cached.
    Entry *find(uint64_t stripe);

    /// Returns (creating if needed) the entry for `stripe`, evicting
    /// the least recently used stripe when over budget.
    Entry *get_or_create(uint64_t stripe, uint64_t stripe_sectors);

    void invalidate(uint64_t stripe);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    size_t size() const { return map_.size(); }
    uint64_t capacity_stripes() const { return capacity_stripes_; }

  private:
    void touch(uint64_t stripe);

    uint64_t stripe_bytes_;
    uint64_t capacity_stripes_;
    bool store_;
    std::list<uint64_t> lru_; ///< front = most recent
    std::unordered_map<uint64_t,
                       std::pair<Entry, std::list<uint64_t>::iterator>>
        map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace raizn
