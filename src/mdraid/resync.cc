/**
 * @file
 * mdraid resync (§6.2, Fig. 12): after a failed device is replaced,
 * md reconstructs and rewrites the replacement's ENTIRE address space.
 * Unlike RAIZN it cannot distinguish valid data from free space, so
 * the time to repair is constant regardless of array fill.
 */
#include <cassert>
#include <map>

#include "common/logging.h"
#include "mdraid/md_volume.h"
#include "obs/trace.h"
#include "raizn/stripe_buffer.h" // xor_bytes
#include "sim/event_loop.h"

namespace raizn {

namespace {

struct ResyncJob {
    uint32_t dev = 0;
    uint64_t nchunks = 0; ///< chunks on the replacement device
    uint64_t next_issue = 0;
    uint64_t completed = 0;
    uint32_t inflight = 0;
    Status status;
    std::function<void(uint64_t, uint64_t)> progress;
    StatusCb done;
    bool finished = false;
    bool throttle_armed = false; ///< refill wake-up already scheduled

    // Trace correlation (0 = tracing detached).
    uint64_t trace_req = 0;
    uint64_t total_token = 0; ///< open "resync.device" span

    static constexpr uint64_t kWindow = 32;
};

} // namespace

void
MdVolume::resync_device(uint32_t dev,
                        std::function<void(uint64_t, uint64_t)> progress,
                        StatusCb done)
{
    if (failed_dev_ != static_cast<int>(dev) || devs_[dev]->failed()) {
        loop_->schedule_after(1, [done = std::move(done)] {
            done(Status(StatusCode::kInvalidArgument,
                        "device not failed+replaced"));
        });
        return;
    }

    auto job = std::make_shared<ResyncJob>();
    job->dev = dev;
    job->nchunks = devs_[dev]->geometry().nsectors / cfg_.chunk_sectors;
    job->progress = std::move(progress);
    job->done = std::move(done);
    if (trace_ != nullptr) {
        job->trace_req = trace_->next_request_id();
        job->total_token = trace_->begin_span(
            "resync.device", job->trace_req, obs::kTrackMetadata,
            loop_->now());
    }

    // Online resync: a configured rate caps resync traffic so degraded
    // foreground service keeps its floor (adaptive mode additionally
    // backs off when the foreground write EWMA rises).
    throttle_.reset();
    if (lifecycle_.throttle.rate_sectors_per_sec > 0) {
        throttle_ =
            std::make_unique<RebuildThrottle>(loop_, lifecycle_.throttle);
        throttle_->set_baseline_latency(fg_write_ewma_ns_);
    }
    resyncing_ = true;

    auto pump = std::make_shared<std::function<void()>>();
    *pump = [this, job, pump]() {
        if (job->finished)
            return;
        while (job->next_issue < job->nchunks &&
               job->inflight < ResyncJob::kWindow) {
            if (throttle_ != nullptr &&
                !throttle_->try_acquire(cfg_.chunk_sectors)) {
                stats_.resync_throttle_stalls++;
                if (!job->throttle_armed) {
                    job->throttle_armed = true;
                    loop_->schedule_after(
                        throttle_->ns_until(cfg_.chunk_sectors),
                        [pump, job, alive = alive_] {
                            if (!*alive)
                                return;
                            job->throttle_armed = false;
                            (*pump)();
                        });
                }
                break;
            }
            uint64_t stripe = job->next_issue++;
            job->inflight++;
            int pos = data_pos_of_dev(stripe, job->dev);
            // Reconstruct this device's chunk from every other device:
            // XOR works for both data chunks and the parity chunk.
            struct Acc {
                uint32_t pending = 0;
                bool issued_all = false;
                std::vector<uint8_t> data;
            };
            auto acc = std::make_shared<Acc>();
            if (store_data_) {
                acc->data.assign(
                    static_cast<size_t>(cfg_.chunk_sectors) * kSectorSize,
                    0);
            }
            auto write_out = [this, job, stripe, acc, pump]() {
                IoRequest req;
                req.op = IoOp::kWrite;
                req.slba = chunk_pba(stripe);
                req.nsectors = cfg_.chunk_sectors;
                req.trace_req = job->trace_req;
                req.trace_stage = "resync.write";
                req.cause = obs::Cause::kResync;
                if (store_data_)
                    req.data = std::move(acc->data);
                dev_submit(
                    job->dev, std::move(req),
                    [this, job, pump](IoResult r) {
                        if (!r.status.is_ok() && job->status.is_ok())
                            job->status = r.status;
                        stats_.resynced_sectors += cfg_.chunk_sectors;
                        job->inflight--;
                        job->completed++;
                        if (job->progress &&
                            job->completed % 1024 == 0) {
                            job->progress(job->completed, job->nchunks);
                        }
                        if (job->completed == job->nchunks &&
                            !job->finished) {
                            job->finished = true;
                            failed_dev_ = -1;
                            resyncing_ = false;
                            throttle_.reset();
                            if (trace_ != nullptr &&
                                job->total_token != 0) {
                                trace_->end_span(job->total_token,
                                                 loop_->now());
                            }
                            auto done = std::move(job->done);
                            done(job->status);
                            // Break the pump's self-reference cycle.
                            *pump = [] {};
                            return;
                        }
                        (*pump)();
                    });
            };
            auto one = [this, job, acc, write_out](IoResult r) {
                if (!r.status.is_ok() && job->status.is_ok())
                    job->status = r.status;
                if (!r.data.empty() && store_data_) {
                    xor_bytes(acc->data.data(), r.data.data(),
                              std::min(r.data.size(), acc->data.size()));
                }
                if (--acc->pending == 0 && acc->issued_all)
                    write_out();
            };
            (void)pos;
            for (uint32_t d = 0; d < devs_.size(); ++d) {
                if (d == job->dev)
                    continue;
                acc->pending++;
                IoRequest rreq = IoRequest::read(chunk_pba(stripe),
                                                 cfg_.chunk_sectors);
                rreq.trace_req = job->trace_req;
                rreq.trace_stage = "resync.read";
                rreq.cause = obs::Cause::kResync;
                dev_submit(d, std::move(rreq), one);
            }
            acc->issued_all = true;
        }
    };
    loop_->schedule_after(1, [pump] { (*pump)(); });
}

} // namespace raizn
