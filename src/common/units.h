/**
 * @file
 * Size and time unit helpers. All device code uses 4 KiB sectors and a
 * virtual clock counted in nanoseconds (Tick).
 */
#pragma once

#include <cstdint>

namespace raizn {

/// Virtual time in nanoseconds.
using Tick = uint64_t;

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

/// Fixed logical sector size used by every device in this repo.
inline constexpr uint32_t kSectorSize = 4096;
inline constexpr uint32_t kSectorShift = 12;

inline constexpr Tick kNsPerUs = 1000ull;
inline constexpr Tick kNsPerMs = 1000ull * 1000ull;
inline constexpr Tick kNsPerSec = 1000ull * 1000ull * 1000ull;

/// Converts a byte count to sectors, asserting alignment in debug builds.
constexpr uint64_t
bytes_to_sectors(uint64_t bytes)
{
    return bytes >> kSectorShift;
}

constexpr uint64_t
sectors_to_bytes(uint64_t sectors)
{
    return sectors << kSectorShift;
}

/// Rounds `v` up to the next multiple of `align` (align > 0).
constexpr uint64_t
round_up(uint64_t v, uint64_t align)
{
    return (v + align - 1) / align * align;
}

constexpr uint64_t
div_ceil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/// MiB/s given bytes moved over a tick interval.
constexpr double
mib_per_sec(uint64_t bytes, Tick elapsed_ns)
{
    if (elapsed_ns == 0)
        return 0.0;
    return static_cast<double>(bytes) / static_cast<double>(kMiB) /
        (static_cast<double>(elapsed_ns) / static_cast<double>(kNsPerSec));
}

} // namespace raizn
