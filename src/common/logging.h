/**
 * @file
 * Minimal leveled logger. Quiet by default so tests and benches stay
 * readable; raise the level for debugging.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace raizn {

enum class LogLevel : int {
    kError = 0,
    kWarn = 1,
    kInfo = 2,
    kDebug = 3,
};

/// Global log threshold; messages above it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const char *file, int line,
                 const std::string &msg);

/// printf-style formatting into a std::string.
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace raizn

#define RAIZN_LOG(level, ...)                                               \
    do {                                                                    \
        if (static_cast<int>(level) <=                                      \
            static_cast<int>(::raizn::log_level())) {                       \
            ::raizn::log_message(level, __FILE__, __LINE__,                 \
                                 ::raizn::strprintf(__VA_ARGS__));          \
        }                                                                   \
    } while (0)

#define LOG_ERROR(...) RAIZN_LOG(::raizn::LogLevel::kError, __VA_ARGS__)
#define LOG_WARN(...) RAIZN_LOG(::raizn::LogLevel::kWarn, __VA_ARGS__)
#define LOG_INFO(...) RAIZN_LOG(::raizn::LogLevel::kInfo, __VA_ARGS__)
#define LOG_DEBUG(...) RAIZN_LOG(::raizn::LogLevel::kDebug, __VA_ARGS__)

/// Unrecoverable internal invariant violation (a bug, not a user error).
#define RAIZN_PANIC(...)                                                    \
    do {                                                                    \
        ::raizn::log_message(::raizn::LogLevel::kError, __FILE__, __LINE__, \
                             "PANIC: " + ::raizn::strprintf(__VA_ARGS__));  \
        std::abort();                                                       \
    } while (0)
