/**
 * @file
 * Log-bucketed latency histogram with percentile queries, used by the
 * workload runner and application benchmarks (median / p95 / p99 / p99.9).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace raizn {

/**
 * Histogram over unsigned 64-bit samples (nanoseconds in practice).
 *
 * Buckets are arranged with geometric growth: 64 linear sub-buckets per
 * power-of-two range, giving ~1.6% relative error on percentiles while
 * keeping the footprint fixed and merges cheap.
 */
class Histogram
{
  public:
    Histogram();

    void add(uint64_t value);
    void merge(const Histogram &other);
    void clear();

    uint64_t count() const { return count_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const;

    /// Value at quantile q in [0, 1] (interpolated within the bucket).
    uint64_t percentile(double q) const;

    uint64_t p50() const { return percentile(0.50); }
    uint64_t p95() const { return percentile(0.95); }
    uint64_t p99() const { return percentile(0.99); }
    uint64_t p999() const { return percentile(0.999); }

    /// One-line summary ("n=... mean=...us p50=...us p99.9=...us").
    std::string summary_us() const;

    /**
     * Snapshot-and-reset of the *window*, not the histogram: returns a
     * histogram holding exactly the samples added since the previous
     * window() call (or construction), then starts a new window. The
     * cumulative state is untouched, so callers can keep whole-run
     * percentiles and per-interval percentiles from the same instance.
     * The window's min/max are exact (tracked per-sample).
     */
    Histogram window();

    /**
     * Samples present in `cur` but not in `prev`, where `prev` is an
     * earlier copy of the same histogram (bucket-wise subtraction).
     * This is how the timeline windows *read-only* histograms it does
     * not own: keep the previous snapshot, diff per interval. min/max
     * are approximated by the bounds of the extreme changed buckets
     * (within the histogram's ~1.6% bucket error). If `cur` was
     * cleared since `prev` was taken (count went backwards), returns a
     * copy of `cur`.
     */
    static Histogram delta(const Histogram &cur, const Histogram &prev);

  private:
    static constexpr int kSubBucketBits = 6; // 64 sub-buckets
    static constexpr int kSubBuckets = 1 << kSubBucketBits;
    static constexpr int kRanges = 64 - kSubBucketBits;

    static int bucket_index(uint64_t value);
    static uint64_t bucket_lower_bound(int index);
    static uint64_t bucket_upper_bound(int index);

    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;

    // Window baseline: cumulative state as of the last window() call.
    // win_base_buckets_ is allocated lazily on the first window() so
    // histograms that never use windows pay nothing extra.
    std::vector<uint64_t> win_base_buckets_;
    uint64_t win_base_count_ = 0;
    uint64_t win_base_sum_ = 0;
    uint64_t win_min_ = UINT64_MAX; ///< exact min/max within the window
    uint64_t win_max_ = 0;
};

} // namespace raizn
