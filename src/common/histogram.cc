#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/logging.h"

namespace raizn {

Histogram::Histogram() : buckets_(kRanges * kSubBuckets, 0) {}

int
Histogram::bucket_index(uint64_t value)
{
    // Values below kSubBuckets fall into range 0 linearly.
    if (value < kSubBuckets)
        return static_cast<int>(value);
    int msb = 63 - std::countl_zero(value);
    int range = msb - kSubBucketBits + 1;
    if (range >= kRanges)
        range = kRanges - 1;
    uint64_t sub = (value >> (range - 1)) - kSubBuckets;
    assert(sub < kSubBuckets);
    return range * kSubBuckets + static_cast<int>(sub);
}

uint64_t
Histogram::bucket_lower_bound(int index)
{
    int range = index / kSubBuckets;
    uint64_t sub = static_cast<uint64_t>(index % kSubBuckets);
    if (range == 0)
        return sub;
    return (kSubBuckets + sub) << (range - 1);
}

uint64_t
Histogram::bucket_upper_bound(int index)
{
    int range = index / kSubBuckets;
    uint64_t sub = static_cast<uint64_t>(index % kSubBuckets);
    if (range == 0)
        return sub + 1;
    return (kSubBuckets + sub + 1) << (range - 1);
}

void
Histogram::add(uint64_t value)
{
    buckets_[static_cast<size_t>(bucket_index(value))]++;
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    win_min_ = std::min(win_min_, value);
    win_max_ = std::max(win_max_, value);
}

void
Histogram::merge(const Histogram &other)
{
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    if (other.count_ > 0) {
        win_min_ = std::min(win_min_, other.min_);
        win_max_ = std::max(win_max_, other.max_);
    }
}

void
Histogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
    win_base_buckets_.clear();
    win_base_count_ = 0;
    win_base_sum_ = 0;
    win_min_ = UINT64_MAX;
    win_max_ = 0;
}

Histogram
Histogram::window()
{
    Histogram w;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        uint64_t base =
            i < win_base_buckets_.size() ? win_base_buckets_[i] : 0;
        w.buckets_[i] = buckets_[i] - base;
    }
    w.count_ = count_ - win_base_count_;
    w.sum_ = sum_ - win_base_sum_;
    if (w.count_ > 0) {
        w.min_ = win_min_;
        w.max_ = win_max_;
        w.win_min_ = win_min_;
        w.win_max_ = win_max_;
    }
    win_base_buckets_ = buckets_;
    win_base_count_ = count_;
    win_base_sum_ = sum_;
    win_min_ = UINT64_MAX;
    win_max_ = 0;
    return w;
}

Histogram
Histogram::delta(const Histogram &cur, const Histogram &prev)
{
    if (cur.count_ < prev.count_)
        return cur; // cur was cleared since prev was snapshotted
    Histogram d;
    int lo_bucket = -1, hi_bucket = -1;
    for (size_t i = 0; i < cur.buckets_.size(); ++i) {
        uint64_t n = cur.buckets_[i] - prev.buckets_[i];
        if (n == 0)
            continue;
        d.buckets_[i] = n;
        if (lo_bucket < 0)
            lo_bucket = static_cast<int>(i);
        hi_bucket = static_cast<int>(i);
    }
    d.count_ = cur.count_ - prev.count_;
    d.sum_ = cur.sum_ - prev.sum_;
    if (d.count_ > 0 && lo_bucket >= 0) {
        // min/max at bucket precision, clamped into the cumulative
        // histogram's observed range.
        d.min_ = std::max(bucket_lower_bound(lo_bucket), cur.min());
        d.max_ = std::min(bucket_upper_bound(hi_bucket) - 1, cur.max());
        if (d.min_ > d.max_)
            d.min_ = d.max_;
        d.win_min_ = d.min_;
        d.win_max_ = d.max_;
    }
    return d;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (target >= count_)
        target = count_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (seen + buckets_[i] > target) {
            // Interpolate linearly within the bucket.
            uint64_t lo = bucket_lower_bound(static_cast<int>(i));
            uint64_t hi = bucket_upper_bound(static_cast<int>(i));
            double frac = static_cast<double>(target - seen) /
                static_cast<double>(buckets_[i]);
            uint64_t v = lo +
                static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
            return std::clamp(v, min(), max());
        }
        seen += buckets_[i];
    }
    return max_;
}

std::string
Histogram::summary_us() const
{
    return strprintf(
        "n=%llu mean=%.1fus p50=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus",
        static_cast<unsigned long long>(count_), mean() / 1e3,
        static_cast<double>(p50()) / 1e3, static_cast<double>(p99()) / 1e3,
        static_cast<double>(p999()) / 1e3, static_cast<double>(max()) / 1e3);
}

} // namespace raizn
