/**
 * @file
 * Lightweight status codes and a Result<T> wrapper used throughout the
 * repository instead of exceptions.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace raizn {

/// Error codes shared by the device, RAID, env, and KV layers.
enum class StatusCode : uint8_t {
    kOk = 0,
    /// Generic media / transport error.
    kIoError,
    /// Request parameters are malformed (alignment, range, flags).
    kInvalidArgument,
    /// Write is not at the zone write pointer.
    kWritePointerMismatch,
    /// IO crosses a zone boundary (ZNS forbids this for writes).
    kZoneBoundary,
    /// Zone (or device/volume) is in a read-only state.
    kReadOnly,
    /// Zone or device is offline / dead.
    kOffline,
    /// Zone is full or device/volume is out of space.
    kNoSpace,
    /// Too many open/active zones.
    kTooManyOpenZones,
    /// Named entity does not exist.
    kNotFound,
    /// Named entity already exists.
    kAlreadyExists,
    /// Operation cannot run in the current state.
    kBusy,
    /// Data failed checksum / consistency validation.
    kCorruption,
    /// Feature intentionally not implemented.
    kNotSupported,
};

/// Returns a stable human-readable name for a status code.
constexpr std::string_view
to_string(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kIoError: return "IO_ERROR";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kWritePointerMismatch: return "WP_MISMATCH";
      case StatusCode::kZoneBoundary: return "ZONE_BOUNDARY";
      case StatusCode::kReadOnly: return "READ_ONLY";
      case StatusCode::kOffline: return "OFFLINE";
      case StatusCode::kNoSpace: return "NO_SPACE";
      case StatusCode::kTooManyOpenZones: return "TOO_MANY_OPEN_ZONES";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kBusy: return "BUSY";
      case StatusCode::kCorruption: return "CORRUPTION";
      case StatusCode::kNotSupported: return "NOT_SUPPORTED";
    }
    return "UNKNOWN";
}

/**
 * Status of an operation: a code plus an optional context message.
 * Statuses are cheap to copy when OK (no allocation on the fast path).
 */
class Status
{
  public:
    Status() = default;

    /*implicit*/ Status(StatusCode code) : code_(code) {}

    Status(StatusCode code, std::string msg)
        : code_(code), msg_(std::move(msg)) {}

    static Status ok() { return Status(); }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    explicit operator bool() const { return is_ok(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return msg_; }

    /// Formats "CODE: message" for logs and test failure output.
    std::string
    to_string() const
    {
        std::string s(raizn::to_string(code_));
        if (!msg_.empty()) {
            s += ": ";
            s += msg_;
        }
        return s;
    }

    bool operator==(const Status &o) const { return code_ == o.code_; }
    bool operator==(StatusCode c) const { return code_ == c; }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string msg_;
};

/**
 * Result<T> couples a Status with a value that is only present on success.
 * A minimal stand-in for std::expected (not yet in our toolchain's C++20).
 */
template <typename T>
class Result
{
  public:
    /*implicit*/ Result(T value) : value_(std::move(value)) {}
    /*implicit*/ Result(Status status) : status_(std::move(status))
    {
        assert(!status_.is_ok() && "OK Result must carry a value");
    }
    /*implicit*/ Result(StatusCode code) : status_(code)
    {
        assert(code != StatusCode::kOk && "OK Result must carry a value");
    }

    bool is_ok() const { return status_.is_ok(); }
    explicit operator bool() const { return is_ok(); }

    const Status &status() const { return status_; }

    T &value() &
    {
        assert(is_ok());
        return *value_;
    }
    const T &value() const &
    {
        assert(is_ok());
        return *value_;
    }
    T &&value() &&
    {
        assert(is_ok());
        return std::move(*value_);
    }

    T
    value_or(T fallback) const
    {
        return is_ok() ? *value_ : std::move(fallback);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace raizn
