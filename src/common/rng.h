/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) plus the
 * zipfian generator used by the KV / OLTP workloads. Everything in this
 * repo seeds explicitly so runs are reproducible.
 */
#pragma once

#include <cstdint>

namespace raizn {

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    uint64_t next();

    /// Uniform in [0, bound) — bound must be > 0.
    uint64_t next_below(uint64_t bound);

    /// Uniform in [lo, hi] inclusive.
    uint64_t next_range(uint64_t lo, uint64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Bernoulli with probability p.
    bool next_bool(double p);

  private:
    uint64_t s_[4];
};

/**
 * Zipfian distribution over [0, n) with parameter theta, following the
 * YCSB/Gray et al. rejection-free construction.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(uint64_t n, double theta = 0.99,
                     uint64_t seed = 0x1234);

    uint64_t next();
    uint64_t n() const { return n_; }

  private:
    static double zeta(uint64_t n, double theta);

    uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;
};

} // namespace raizn
