#include "common/crc32.h"

#include <array>

namespace raizn {

namespace {
constexpr uint32_t kPoly = 0x82f63b78; // CRC32C reflected polynomial

std::array<uint32_t, 256>
make_table()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
        table[i] = crc;
    }
    return table;
}

const std::array<uint32_t, 256> kTable = make_table();
} // namespace

uint32_t
crc32c(const void *data, size_t len, uint32_t seed)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xff];
    return ~crc;
}

} // namespace raizn
