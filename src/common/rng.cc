#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace raizn {

namespace {
constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/// splitmix64 for seeding.
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}
} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::next_below(uint64_t bound)
{
    assert(bound > 0);
    // Lemire's multiply-shift; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

uint64_t
Rng::next_range(uint64_t lo, uint64_t hi)
{
    assert(lo <= hi);
    return lo + next_below(hi - lo + 1);
}

double
Rng::next_double()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::next_bool(double p)
{
    return next_double() < p;
}

double
ZipfianGenerator::zeta(uint64_t n, double theta)
{
    // Exact up to a cap, then the standard integral approximation; keeps
    // construction O(1)-ish for very large n.
    constexpr uint64_t kExactCap = 1 << 20;
    double sum = 0;
    uint64_t exact = n < kExactCap ? n : kExactCap;
    for (uint64_t i = 1; i <= exact; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (n > exact) {
        // integral_{exact}^{n} x^-theta dx
        sum += (std::pow(static_cast<double>(n), 1 - theta) -
                std::pow(static_cast<double>(exact), 1 - theta)) /
            (1 - theta);
    }
    return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    assert(n > 0);
    zetan_ = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1 - std::pow(2.0 / static_cast<double>(n), 1 - theta)) /
        (1 - zeta2 / zetan_);
}

uint64_t
ZipfianGenerator::next()
{
    double u = rng_.next_double();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto v = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

} // namespace raizn
