/**
 * @file
 * CRC32C (Castagnoli) used to checksum superblocks, metadata log entries,
 * WAL records, and SSTable blocks.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace raizn {

/// CRC32C of `data[0, len)`, continuing from `seed` (0 to start).
uint32_t crc32c(const void *data, size_t len, uint32_t seed = 0);

} // namespace raizn
