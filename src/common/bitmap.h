/**
 * @file
 * Simple dynamic bitmap used for persistence bitmaps (RAIZN §5.3) and the
 * block env's allocation map.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace raizn {

class Bitmap
{
  public:
    Bitmap() = default;
    explicit Bitmap(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

    size_t size() const { return bits_; }

    void
    resize(size_t bits)
    {
        bits_ = bits;
        words_.assign((bits + 63) / 64, 0);
    }

    bool
    test(size_t i) const
    {
        assert(i < bits_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i)
    {
        assert(i < bits_);
        words_[i >> 6] |= (1ull << (i & 63));
    }

    void
    clear(size_t i)
    {
        assert(i < bits_);
        words_[i >> 6] &= ~(1ull << (i & 63));
    }

    /// Sets bits [lo, hi).
    void
    set_range(size_t lo, size_t hi)
    {
        for (size_t i = lo; i < hi; ++i)
            set(i);
    }

    void
    clear_all()
    {
        std::fill(words_.begin(), words_.end(), 0);
    }

    /// True iff every bit in [lo, hi) is set.
    bool
    all_set(size_t lo, size_t hi) const
    {
        for (size_t i = lo; i < hi; ++i) {
            if (!test(i))
                return false;
        }
        return true;
    }

    /// Index of first clear bit at or after `from`, or size() if none.
    size_t
    find_first_clear(size_t from = 0) const
    {
        for (size_t i = from; i < bits_; ++i) {
            if (!test(i))
                return i;
        }
        return bits_;
    }

    size_t
    count_set() const
    {
        size_t n = 0;
        for (uint64_t w : words_)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

  private:
    size_t bits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace raizn
