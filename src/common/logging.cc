#include "common/logging.h"

#include <cstdarg>

namespace raizn {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kDebug: return "DEBUG";
    }
    return "?";
}
} // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

void
log_message(LogLevel level, const char *file, int line,
            const std::string &msg)
{
    const char *base = file;
    for (const char *p = file; *p; ++p) {
        if (*p == '/')
            base = p + 1;
    }
    std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), base, line,
                 msg.c_str());
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // namespace raizn
