#include "kv/db.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "kv/coding.h"

namespace raizn {

Db::Db(Env *env, DbOptions options) : env_(env), opt_(options)
{
    levels_.resize(opt_.max_levels);
}

Db::~Db()
{
    if (wal_)
        wal_->close();
}

Result<std::unique_ptr<Db>>
Db::open(Env *env, DbOptions options)
{
    auto db = std::unique_ptr<Db>(new Db(env, options));
    Status st = db->open_wal();
    if (!st)
        return st;
    return db;
}

std::string
Db::sst_name(uint64_t number) const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%06llu.sst",
                  (unsigned long long)number);
    return buf;
}

Status
Db::open_wal()
{
    wal_number_ = next_file_++;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%06llu.wal",
                  (unsigned long long)wal_number_);
    auto wal = env_->new_writable(buf);
    if (!wal.is_ok())
        return wal.status();
    wal_ = std::move(wal).value();
    return Status::ok();
}

Status
Db::write_impl(const std::string &key,
               const std::optional<std::string> &value)
{
    // WAL record: klen | vlen(or max) | key | value
    std::vector<uint8_t> rec;
    put_u32(rec, static_cast<uint32_t>(key.size()));
    put_u32(rec, value ? static_cast<uint32_t>(value->size())
                       : UINT32_MAX);
    rec.insert(rec.end(), key.begin(), key.end());
    if (value)
        rec.insert(rec.end(), value->begin(), value->end());
    Status st = wal_->append(rec);
    if (!st)
        return st;
    if (opt_.sync_wal) {
        st = wal_->sync();
        if (!st)
            return st;
    }

    mem_bytes_ += key.size() + (value ? value->size() : 0) + 16;
    mem_[key] = value;
    if (mem_bytes_ >= opt_.memtable_bytes) {
        st = flush_memtable();
        if (!st)
            return st;
        st = maybe_compact();
        if (!st)
            return st;
    }
    return Status::ok();
}

Status
Db::put(const std::string &key, const std::string &value)
{
    stats_.puts++;
    return write_impl(key, value);
}

Status
Db::delete_key(const std::string &key)
{
    stats_.deletes++;
    return write_impl(key, std::nullopt);
}

Result<std::string>
Db::get(const std::string &key)
{
    stats_.gets++;
    auto mit = mem_.find(key);
    if (mit != mem_.end()) {
        if (!mit->second)
            return Status(StatusCode::kNotFound, "deleted");
        return *mit->second;
    }
    // L0 newest first, then deeper levels.
    for (uint32_t level = 0; level < levels_.size(); ++level) {
        for (FileMeta &f : levels_[level]) {
            if (level > 0) {
                if (key < f.reader->smallest() ||
                    key > f.reader->largest()) {
                    continue;
                }
            }
            bool tombstone = false;
            auto res = f.reader->get(key, &tombstone);
            if (tombstone)
                return Status(StatusCode::kNotFound, "deleted");
            if (res.is_ok())
                return res;
            if (res.status().code() != StatusCode::kNotFound)
                return res.status();
        }
    }
    return Status(StatusCode::kNotFound, key);
}

Status
Db::flush_memtable()
{
    if (mem_.empty())
        return Status::ok();
    stats_.memtable_flushes++;
    std::vector<KvEntry> entries(mem_.begin(), mem_.end());
    uint64_t number = next_file_++;
    std::string name = sst_name(number);
    Status st = SstWriter::write(env_, name, entries);
    if (!st)
        return st;
    auto reader = SstReader::open(env_, name);
    if (!reader.is_ok())
        return reader.status();
    FileMeta meta;
    meta.number = number;
    meta.name = name;
    meta.bytes = reader.value()->file_bytes();
    meta.reader = std::move(reader).value();
    levels_[0].insert(levels_[0].begin(), std::move(meta));

    mem_.clear();
    mem_bytes_ = 0;
    // Retire the WAL: its contents are now durable in the SST.
    wal_->close();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%06llu.wal",
                  (unsigned long long)wal_number_);
    env_->delete_file(buf);
    return open_wal();
}

uint64_t
Db::level_bytes(uint32_t level) const
{
    uint64_t total = 0;
    for (const FileMeta &f : levels_[level])
        total += f.bytes;
    return total;
}

Status
Db::maybe_compact()
{
    for (int round = 0; round < 8; ++round) {
        if (levels_[0].size() >= opt_.l0_compaction_trigger) {
            Status st = compact_l0();
            if (!st)
                return st;
            continue;
        }
        bool did = false;
        uint64_t limit = opt_.l1_bytes;
        for (uint32_t level = 1; level + 1 < levels_.size(); ++level) {
            if (level_bytes(level) > limit) {
                Status st = compact_level(level);
                if (!st)
                    return st;
                did = true;
                break;
            }
            limit = static_cast<uint64_t>(static_cast<double>(limit) *
                                          opt_.level_growth);
        }
        if (!did)
            break;
    }
    return Status::ok();
}

Status
Db::compact_l0()
{
    stats_.compactions++;
    // Merge every L0 file (newest wins) with every overlapping L1 file.
    std::map<std::string, std::optional<std::string>> merged;
    // Oldest first so newer entries overwrite.
    std::string lo, hi;
    bool have_range = false;
    for (auto it = levels_[0].rbegin(); it != levels_[0].rend(); ++it) {
        auto all = it->reader->load_all();
        if (!all.is_ok())
            return all.status();
        stats_.compaction_bytes_read += it->bytes;
        for (auto &e : all.value()) {
            if (!have_range) {
                lo = hi = e.first;
                have_range = true;
            }
            lo = std::min(lo, e.first);
            hi = std::max(hi, e.first);
            merged[e.first] = std::move(e.second);
        }
    }
    // Overlapping L1 files: older than everything in L0.
    std::vector<FileMeta> keep;
    for (FileMeta &f : levels_[1]) {
        if (f.reader->largest() < lo || f.reader->smallest() > hi) {
            keep.push_back(std::move(f));
            continue;
        }
        auto all = f.reader->load_all();
        if (!all.is_ok())
            return all.status();
        stats_.compaction_bytes_read += f.bytes;
        for (auto &e : all.value())
            merged.emplace(e.first, std::move(e.second)); // L0 wins
        env_->delete_file(f.name);
    }
    for (FileMeta &f : levels_[0])
        env_->delete_file(f.name);
    levels_[0].clear();
    levels_[1] = std::move(keep);

    std::vector<KvEntry> entries(
        std::make_move_iterator(merged.begin()),
        std::make_move_iterator(merged.end()));
    return write_merged(std::move(entries), 1);
}

Status
Db::compact_level(uint32_t level)
{
    stats_.compactions++;
    assert(level >= 1 && level + 1 < levels_.size());
    if (levels_[level].empty())
        return Status::ok();
    // Pick the first (smallest-key) file and merge it down.
    FileMeta victim = std::move(levels_[level].front());
    levels_[level].erase(levels_[level].begin());
    std::map<std::string, std::optional<std::string>> merged;
    auto all = victim.reader->load_all();
    if (!all.is_ok())
        return all.status();
    stats_.compaction_bytes_read += victim.bytes;
    for (auto &e : all.value())
        merged[e.first] = std::move(e.second);
    std::string lo = victim.reader->smallest();
    std::string hi = victim.reader->largest();
    env_->delete_file(victim.name);

    std::vector<FileMeta> keep;
    for (FileMeta &f : levels_[level + 1]) {
        if (f.reader->largest() < lo || f.reader->smallest() > hi) {
            keep.push_back(std::move(f));
            continue;
        }
        auto older = f.reader->load_all();
        if (!older.is_ok())
            return older.status();
        stats_.compaction_bytes_read += f.bytes;
        for (auto &e : older.value())
            merged.emplace(e.first, std::move(e.second));
        env_->delete_file(f.name);
    }
    levels_[level + 1] = std::move(keep);

    // Bottom level drops tombstones.
    std::vector<KvEntry> entries;
    entries.reserve(merged.size());
    bool bottom = level + 2 == levels_.size();
    for (auto &e : merged) {
        if (bottom && !e.second)
            continue;
        entries.emplace_back(e.first, std::move(e.second));
    }
    return write_merged(std::move(entries), level + 1);
}

Status
Db::write_merged(std::vector<KvEntry> entries, uint32_t level)
{
    // Split into target-size files and insert sorted by smallest key.
    std::vector<FileMeta> new_files;
    size_t i = 0;
    while (i < entries.size()) {
        uint64_t bytes = 0;
        std::vector<KvEntry> chunk;
        while (i < entries.size() && bytes < opt_.target_file_bytes) {
            bytes += entries[i].first.size() +
                (entries[i].second ? entries[i].second->size() : 0) + 8;
            chunk.push_back(std::move(entries[i]));
            i++;
        }
        uint64_t number = next_file_++;
        std::string name = sst_name(number);
        Status st = SstWriter::write(env_, name, chunk);
        if (!st)
            return st;
        auto reader = SstReader::open(env_, name);
        if (!reader.is_ok())
            return reader.status();
        FileMeta meta;
        meta.number = number;
        meta.name = name;
        meta.bytes = reader.value()->file_bytes();
        stats_.compaction_bytes_written += meta.bytes;
        meta.reader = std::move(reader).value();
        new_files.push_back(std::move(meta));
    }
    for (auto &f : new_files)
        levels_[level].push_back(std::move(f));
    std::sort(levels_[level].begin(), levels_[level].end(),
              [](const FileMeta &a, const FileMeta &b) {
                  return a.reader->smallest() < b.reader->smallest();
              });
    return Status::ok();
}

Status
Db::flush_all()
{
    Status st = flush_memtable();
    if (!st)
        return st;
    return maybe_compact();
}

std::vector<size_t>
Db::level_file_counts() const
{
    std::vector<size_t> out;
    for (const auto &level : levels_)
        out.push_back(level.size());
    return out;
}

} // namespace raizn
