#include "kv/bloom.h"

#include "common/crc32.h"

namespace raizn {

namespace {
constexpr int kBitsPerKey = 10;
constexpr int kProbes = 6;

uint64_t
hash_key(const std::string &key)
{
    uint32_t a = crc32c(key.data(), key.size());
    uint32_t b = crc32c(key.data(), key.size(), 0x9747b28c);
    return (static_cast<uint64_t>(a) << 32) | b;
}
} // namespace

std::vector<uint8_t>
BloomFilter::build(const std::vector<std::string> &keys)
{
    size_t bits = keys.size() * kBitsPerKey;
    if (bits < 64)
        bits = 64;
    std::vector<uint8_t> filter((bits + 7) / 8, 0);
    bits = filter.size() * 8;
    for (const std::string &key : keys) {
        uint64_t h = hash_key(key);
        uint64_t delta = (h >> 33) | (h << 31);
        for (int i = 0; i < kProbes; ++i) {
            uint64_t bit = h % bits;
            filter[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
            h += delta;
        }
    }
    return filter;
}

bool
BloomFilter::may_contain(const std::vector<uint8_t> &filter,
                         const std::string &key)
{
    if (filter.empty())
        return true;
    size_t bits = filter.size() * 8;
    uint64_t h = hash_key(key);
    uint64_t delta = (h >> 33) | (h << 31);
    for (int i = 0; i < kProbes; ++i) {
        uint64_t bit = h % bits;
        if (!(filter[bit / 8] & (1u << (bit % 8))))
            return false;
        h += delta;
    }
    return true;
}

} // namespace raizn
