/**
 * @file
 * Little-endian fixed-width encoding helpers for KV file formats.
 */
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace raizn {

inline void
put_u32(std::vector<uint8_t> &buf, uint32_t v)
{
    size_t off = buf.size();
    buf.resize(off + 4);
    std::memcpy(buf.data() + off, &v, 4);
}

inline void
put_u64(std::vector<uint8_t> &buf, uint64_t v)
{
    size_t off = buf.size();
    buf.resize(off + 8);
    std::memcpy(buf.data() + off, &v, 8);
}

inline void
put_str(std::vector<uint8_t> &buf, const std::string &s)
{
    put_u32(buf, static_cast<uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

inline uint32_t
get_u32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline uint64_t
get_u64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/// Bounds-checked cursor over a byte buffer.
class Cursor
{
  public:
    Cursor(const uint8_t *data, size_t size) : p_(data), end_(data + size)
    {
    }
    explicit Cursor(const std::vector<uint8_t> &buf)
        : Cursor(buf.data(), buf.size())
    {
    }

    bool ok() const { return ok_; }
    size_t remaining() const { return static_cast<size_t>(end_ - p_); }

    uint32_t
    u32()
    {
        if (remaining() < 4) {
            ok_ = false;
            return 0;
        }
        uint32_t v = get_u32(p_);
        p_ += 4;
        return v;
    }
    uint64_t
    u64()
    {
        if (remaining() < 8) {
            ok_ = false;
            return 0;
        }
        uint64_t v = get_u64(p_);
        p_ += 8;
        return v;
    }
    std::string
    str()
    {
        uint32_t n = u32();
        if (!ok_ || remaining() < n) {
            ok_ = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p_), n);
        p_ += n;
        return s;
    }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    bool ok_ = true;
};

} // namespace raizn
