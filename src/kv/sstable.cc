#include "kv/sstable.h"

#include <cassert>

#include "common/logging.h"
#include "kv/bloom.h"
#include "kv/coding.h"

namespace raizn {

namespace {
constexpr uint64_t kSstMagic = 0x52415a4e53535431ull; // "RAZNSST1"
constexpr uint32_t kTombstone = UINT32_MAX;
constexpr uint64_t kIndexInterval = 4096; // bytes of records per entry
} // namespace

Status
SstWriter::write(Env *env, const std::string &name,
                 const std::vector<KvEntry> &entries)
{
    auto file = env->new_writable(name);
    if (!file.is_ok())
        return file.status();
    WritableFile *out = file.value().get();

    std::vector<uint8_t> data;
    std::vector<uint8_t> index;
    std::vector<std::string> keys;
    keys.reserve(entries.size());
    uint64_t last_index_off = UINT64_MAX;
    for (const KvEntry &e : entries) {
        if (last_index_off == UINT64_MAX ||
            data.size() - last_index_off >= kIndexInterval) {
            put_str(index, e.first);
            put_u64(index, data.size());
            last_index_off = data.size();
        }
        put_u32(data, static_cast<uint32_t>(e.first.size()));
        put_u32(data, e.second
                          ? static_cast<uint32_t>(e.second->size())
                          : kTombstone);
        data.insert(data.end(), e.first.begin(), e.first.end());
        if (e.second)
            data.insert(data.end(), e.second->begin(), e.second->end());
        keys.push_back(e.first);
    }
    std::vector<uint8_t> bloom = BloomFilter::build(keys);

    uint64_t index_off = data.size();
    uint64_t bloom_off = index_off + index.size();
    std::vector<uint8_t> footer;
    put_u64(footer, index_off);
    put_u64(footer, index.size());
    put_u64(footer, bloom_off);
    put_u64(footer, bloom.size());
    put_u64(footer, kSstMagic);

    Status st = out->append(data);
    if (st)
        st = out->append(index);
    if (st)
        st = out->append(bloom);
    if (st)
        st = out->append(footer);
    if (st)
        st = out->close();
    return st;
}

Result<std::unique_ptr<SstReader>>
SstReader::open(Env *env, const std::string &name)
{
    auto file = env->open_readable(name);
    if (!file.is_ok())
        return file.status();

    auto reader = std::unique_ptr<SstReader>(new SstReader());
    reader->env_ = env;
    reader->name_ = name;
    reader->file_ = std::move(file).value();
    reader->file_bytes_ = reader->file_->size();
    if (reader->file_bytes_ < 40)
        return Status(StatusCode::kCorruption, "sst too small");

    auto footer = reader->file_->read(reader->file_bytes_ - 40, 40);
    if (!footer.is_ok())
        return footer.status();
    Cursor f(footer.value());
    uint64_t index_off = f.u64();
    uint64_t index_len = f.u64();
    uint64_t bloom_off = f.u64();
    uint64_t bloom_len = f.u64();
    if (!f.ok() || f.u64() != kSstMagic)
        return Status(StatusCode::kCorruption, "bad sst footer");

    reader->data_end_ = index_off;
    if (index_len > 0) {
        auto idx = reader->file_->read(index_off, index_len);
        if (!idx.is_ok())
            return idx.status();
        Cursor c(idx.value());
        while (c.ok() && c.remaining() > 0) {
            std::string key = c.str();
            uint64_t off = c.u64();
            if (!c.ok())
                break;
            reader->index_[key] = off;
        }
        if (!reader->index_.empty())
            reader->smallest_ = reader->index_.begin()->first;
    }
    if (bloom_len > 0) {
        auto bl = reader->file_->read(bloom_off, bloom_len);
        if (!bl.is_ok())
            return bl.status();
        reader->bloom_ = std::move(bl).value();
    }
    // Largest key: scan the final index block's records.
    if (!reader->index_.empty()) {
        uint64_t last_off = reader->index_.rbegin()->second;
        auto blk = reader->file_->read(last_off,
                                       reader->data_end_ - last_off);
        if (!blk.is_ok())
            return blk.status();
        const std::vector<uint8_t> &bytes = blk.value();
        reader->largest_ = reader->smallest_;
        size_t off = 0;
        while (off + 8 <= bytes.size()) {
            uint32_t klen = get_u32(bytes.data() + off);
            uint32_t vlen = get_u32(bytes.data() + off + 4);
            size_t vbytes = vlen == kTombstone ? 0 : vlen;
            if (off + 8 + klen + vbytes > bytes.size())
                break;
            reader->largest_.assign(
                reinterpret_cast<const char *>(bytes.data() + off + 8),
                klen);
            off += 8 + klen + vbytes;
        }
    }
    return reader;
}

Result<std::string>
SstReader::get(const std::string &key, bool *tombstone)
{
    *tombstone = false;
    if (!BloomFilter::may_contain(bloom_, key))
        return Status(StatusCode::kNotFound, "bloom miss");
    if (index_.empty())
        return Status(StatusCode::kNotFound, "empty table");
    auto it = index_.upper_bound(key);
    if (it == index_.begin())
        return Status(StatusCode::kNotFound, "below smallest");
    --it;
    uint64_t start = it->second;
    auto next = std::next(it);
    uint64_t end = next == index_.end() ? data_end_ : next->second;
    auto blk = file_->read(start, end - start);
    if (!blk.is_ok())
        return blk.status();
    const std::vector<uint8_t> &bytes = blk.value();
    size_t off = 0;
    while (off + 8 <= bytes.size()) {
        uint32_t klen = get_u32(bytes.data() + off);
        uint32_t vlen = get_u32(bytes.data() + off + 4);
        size_t vbytes = vlen == kTombstone ? 0 : vlen;
        if (off + 8 + klen + vbytes > bytes.size())
            break;
        std::string k(reinterpret_cast<const char *>(bytes.data() + off +
                                                     8),
                      klen);
        if (k == key) {
            if (vlen == kTombstone) {
                *tombstone = true;
                return std::string();
            }
            return std::string(
                reinterpret_cast<const char *>(bytes.data() + off + 8 +
                                               klen),
                vlen);
        }
        if (k > key)
            break;
        off += 8 + klen + vbytes;
    }
    return Status(StatusCode::kNotFound, "not in block");
}

Result<std::vector<KvEntry>>
SstReader::load_all()
{
    auto blk = file_->read(0, data_end_);
    if (!blk.is_ok())
        return blk.status();
    const std::vector<uint8_t> &bytes = blk.value();
    std::vector<KvEntry> out;
    size_t off = 0;
    while (off + 8 <= bytes.size()) {
        uint32_t klen = get_u32(bytes.data() + off);
        uint32_t vlen = get_u32(bytes.data() + off + 4);
        size_t vbytes = vlen == kTombstone ? 0 : vlen;
        if (off + 8 + klen + vbytes > bytes.size())
            break;
        std::string k(
            reinterpret_cast<const char *>(bytes.data() + off + 8), klen);
        std::optional<std::string> v;
        if (vlen != kTombstone) {
            v = std::string(reinterpret_cast<const char *>(
                                bytes.data() + off + 8 + klen),
                            vlen);
        }
        out.emplace_back(std::move(k), std::move(v));
        off += 8 + klen + vbytes;
    }
    return out;
}

} // namespace raizn
