/**
 * @file
 * Bloom filter for SSTable point lookups (~10 bits/key, k=6).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace raizn {

class BloomFilter
{
  public:
    /// Builds a filter sized for `keys` with ~1% false positives.
    static std::vector<uint8_t>
    build(const std::vector<std::string> &keys);

    /// Tests membership against a built filter image.
    static bool may_contain(const std::vector<uint8_t> &filter,
                            const std::string &key);
};

} // namespace raizn
