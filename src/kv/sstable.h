/**
 * @file
 * Sorted String Table: immutable on-Env file of sorted key/value
 * records with a sparse index and a bloom filter.
 *
 * Layout: [records][sparse index][bloom][footer(40B)]
 *   record: klen u32 | vlen u32 (UINT32_MAX = tombstone) | key | value
 *   index entry: key | data offset u64 (one per ~4 KiB of records)
 *   footer: index_off, index_len, bloom_off, bloom_len, magic
 */
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "env/env.h"

namespace raizn {

/// One key/value pair; nullopt value = deletion tombstone.
using KvEntry = std::pair<std::string, std::optional<std::string>>;

class SstWriter
{
  public:
    /// Writes `entries` (sorted, unique keys) to `name` on `env`.
    static Status write(Env *env, const std::string &name,
                        const std::vector<KvEntry> &entries);
};

class SstReader
{
  public:
    /// Opens the table, loading index + bloom into memory.
    static Result<std::unique_ptr<SstReader>>
    open(Env *env, const std::string &name);

    /**
     * Point lookup. Returns:
     *  - kOk with the value,
     *  - kNotFound if the key is absent from this table,
     *  - a value-less kOk via `tombstone=true` when deleted here.
     */
    Result<std::string> get(const std::string &key, bool *tombstone);

    /// Reads every entry (used by compaction merges).
    Result<std::vector<KvEntry>> load_all();

    const std::string &smallest() const { return smallest_; }
    const std::string &largest() const { return largest_; }
    uint64_t file_bytes() const { return file_bytes_; }

  private:
    SstReader() = default;

    Env *env_ = nullptr;
    std::string name_;
    std::unique_ptr<ReadableFile> file_;
    std::map<std::string, uint64_t> index_; ///< first key -> offset
    std::vector<uint8_t> bloom_;
    uint64_t data_end_ = 0;
    uint64_t file_bytes_ = 0;
    std::string smallest_, largest_;
};

} // namespace raizn
