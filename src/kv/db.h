/**
 * @file
 * A miniature LSM key-value store (RocksDB stand-in for the paper's
 * application benchmarks): write-ahead log, in-memory memtable,
 * leveled SSTables with bloom filters, and inline compaction. Runs on
 * any Env (ZonedEnv over RAIZN, BlockEnv over mdraid) so the IO
 * pattern RocksDB generates — sequential SST writes, file deletes,
 * point reads — hits the arrays exactly as in §6.3.
 */
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "env/env.h"
#include "kv/sstable.h"

namespace raizn {

struct DbOptions {
    uint64_t memtable_bytes = 4 * kMiB;
    uint64_t target_file_bytes = 4 * kMiB;
    uint32_t l0_compaction_trigger = 4;
    uint64_t l1_bytes = 16 * kMiB;
    double level_growth = 8.0;
    uint32_t max_levels = 5;
    bool sync_wal = false; ///< fsync every write (db_bench default: off)
};

struct DbStats {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
    uint64_t memtable_flushes = 0;
    uint64_t compactions = 0;
    uint64_t compaction_bytes_read = 0;
    uint64_t compaction_bytes_written = 0;
    uint64_t bloom_skips = 0;
};

class Db
{
  public:
    static Result<std::unique_ptr<Db>> open(Env *env, DbOptions options);
    ~Db();

    Status put(const std::string &key, const std::string &value);
    Status delete_key(const std::string &key);
    Result<std::string> get(const std::string &key);

    /// Flushes the memtable and compacts until shape invariants hold.
    Status flush_all();

    const DbStats &stats() const { return stats_; }
    /// Number of SST files per level (tests/introspection).
    std::vector<size_t> level_file_counts() const;

  private:
    struct FileMeta {
        uint64_t number;
        std::string name;
        std::unique_ptr<SstReader> reader;
        uint64_t bytes;
    };

    Db(Env *env, DbOptions options);

    Status write_impl(const std::string &key,
                      const std::optional<std::string> &value);
    Status flush_memtable();
    Status maybe_compact();
    Status compact_l0();
    Status compact_level(uint32_t level);
    Status write_merged(std::vector<KvEntry> entries, uint32_t level);
    uint64_t level_bytes(uint32_t level) const;
    std::string sst_name(uint64_t number) const;
    Status open_wal();

    Env *env_;
    DbOptions opt_;
    std::map<std::string, std::optional<std::string>> mem_;
    uint64_t mem_bytes_ = 0;
    std::unique_ptr<WritableFile> wal_;
    uint64_t wal_number_ = 0;
    uint64_t next_file_ = 1;
    /// levels_[0] ordered newest-first; deeper levels sorted by key.
    std::vector<std::vector<FileMeta>> levels_;
    DbStats stats_;
};

} // namespace raizn
