#include "sim/event_loop.h"

#include <cassert>
#include <utility>

namespace raizn {

void
EventLoop::schedule_at(Tick when, Callback fn)
{
    assert(fn);
    if (when < now_)
        when = now_; // never schedule into the past
    stats_.events_scheduled++;
    sched_delay_ns_.add(when - now_);
    queue_.push(Event{when, next_seq_++, std::move(fn)});
    if (queue_.size() > stats_.max_pending)
        stats_.max_pending = queue_.size();
}

bool
EventLoop::pop_and_run()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never re-heapify the element.
    Event ev = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    assert(ev.when >= now_);
    now_ = ev.when;
    stats_.events_processed++;
    if (observer_)
        observer_(ev.when, ev.seq);
    ev.fn();
    // After the callback, so a row stamped at boundary B reflects all
    // work dispatched at ticks <= B (the callback may have cleared the
    // probe, hence the re-check).
    if (probe_)
        probe_(now_);
    return true;
}

uint64_t
EventLoop::run()
{
    uint64_t n = 0;
    while (pop_and_run())
        n++;
    return n;
}

uint64_t
EventLoop::run_until(Tick until)
{
    uint64_t n = 0;
    while (!queue_.empty() && queue_.top().when <= until) {
        pop_and_run();
        n++;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

bool
EventLoop::run_until_pred(const std::function<bool()> &pred)
{
    while (!pred()) {
        if (!pop_and_run())
            return pred();
    }
    return true;
}

uint64_t
EventLoop::run_events(uint64_t n)
{
    uint64_t done = 0;
    while (done < n && pop_and_run())
        done++;
    return done;
}

} // namespace raizn
