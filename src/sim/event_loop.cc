#include "sim/event_loop.h"

#include <cassert>
#include <utility>

#include "obs/prof/prof.h"

namespace raizn {

void
EventLoop::schedule_at(Tick when, const char *tag, Callback fn)
{
    assert(fn);
    if (when < now_)
        when = now_; // never schedule into the past
    stats_.events_scheduled++;
    sched_delay_ns_.add(when - now_);
    // Host-clock stamp for queue-wait attribution; only while the
    // profiler is measuring, so the disabled path never reads a clock.
    uint64_t sched_host = prof::enabled() ? prof::host_now_ns() : 0;
    queue_.push(Event{when, next_seq_++, std::move(fn), tag, sched_host});
    if (queue_.size() > stats_.max_pending)
        stats_.max_pending = queue_.size();
}

bool
EventLoop::pop_and_run()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately and never re-heapify the element.
    Event ev = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    assert(ev.when >= now_);
    now_ = ev.when;
    stats_.events_processed++;
    // Mirror the virtual clock into the profiler (plain store) and
    // bump the unconditional events/sec meter.
    prof::set_virtual_now(now_);
    prof::count_event();
    if (observer_)
        observer_(ev.when, ev.seq);
    if (prof::enabled()) {
        prof::Site *site = prof::event_site(ev.tag);
        if (ev.sched_host != 0)
            prof::add_queue_wait(site,
                                 prof::host_now_ns() - ev.sched_host);
        prof::Scope scope(site);
        ev.fn();
    } else {
        ev.fn();
    }
    // After the callback, so a row stamped at boundary B reflects all
    // work dispatched at ticks <= B (the callback may have cleared the
    // probe, hence the re-check).
    if (probe_)
        probe_(now_);
    return true;
}

uint64_t
EventLoop::run()
{
    uint64_t n = 0;
    while (pop_and_run())
        n++;
    return n;
}

uint64_t
EventLoop::run_until(Tick until)
{
    uint64_t n = 0;
    while (!queue_.empty() && queue_.top().when <= until) {
        pop_and_run();
        n++;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

bool
EventLoop::run_until_pred(const std::function<bool()> &pred)
{
    while (!pred()) {
        if (!pop_and_run())
            return pred();
    }
    return true;
}

uint64_t
EventLoop::run_events(uint64_t n)
{
    uint64_t done = 0;
    while (done < n && pop_and_run())
        done++;
    return done;
}

} // namespace raizn
