/**
 * @file
 * Deterministic discrete-event simulation loop. All devices, volumes,
 * workload jobs, and application layers share one loop; virtual time is
 * counted in nanoseconds (Tick).
 *
 * Determinism: events at the same tick fire in the order they were
 * scheduled (a monotonically increasing sequence number breaks ties), so
 * a given seed always produces an identical run.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace raizn {

class EventLoop
{
  public:
    using Callback = std::function<void()>;
    /// Observes every dispatched event: (tick, schedule sequence number).
    using Observer = std::function<void(Tick, uint64_t)>;

    EventLoop() = default;
    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /// Current virtual time.
    Tick now() const { return now_; }

    /// Schedules `fn` to run at absolute tick `when` (>= now()).
    void schedule_at(Tick when, Callback fn);

    /// Schedules `fn` to run `delay` ticks from now.
    void schedule_after(Tick delay, Callback fn)
    {
        schedule_at(now_ + delay, std::move(fn));
    }

    /// Runs events until the queue is empty. Returns events processed.
    uint64_t run();

    /// Runs events with time <= `until`; leaves later events queued.
    uint64_t run_until(Tick until);

    /**
     * Runs until `pred()` is true or the queue drains. Checks after each
     * event. Returns true if the predicate was satisfied.
     */
    bool run_until_pred(const std::function<bool()> &pred);

    /// Runs exactly `n` events (or fewer if the queue drains).
    uint64_t run_events(uint64_t n);

    bool empty() const { return queue_.empty(); }
    size_t pending() const { return queue_.size(); }
    uint64_t events_processed() const { return processed_; }

    /**
     * Installs a per-event dispatch hook (pass nullptr to remove). The
     * observer fires before each event's callback runs, receiving the
     * event's tick and schedule sequence number. Because the loop is
     * deterministic, the observed (tick, seq) stream identifies a
     * schedule exactly: the crash-point explorer hashes it to prove a
     * replay followed the recorded schedule.
     */
    void set_observer(Observer obs) { observer_ = std::move(obs); }

    /// Advances the clock with no event (e.g. idle gaps in workloads).
    void
    advance_to(Tick t)
    {
        if (t > now_)
            now_ = t;
    }

  private:
    struct Event {
        Tick when;
        uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool pop_and_run();

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t processed_ = 0;
    Observer observer_;
};

} // namespace raizn
