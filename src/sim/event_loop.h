/**
 * @file
 * Deterministic discrete-event simulation loop. All devices, volumes,
 * workload jobs, and application layers share one loop; virtual time is
 * counted in nanoseconds (Tick).
 *
 * Determinism: events at the same tick fire in the order they were
 * scheduled (a monotonically increasing sequence number breaks ties), so
 * a given seed always produces an identical run.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"

namespace raizn {

/**
 * Scheduling counters for the loop. Every in-flight IO, timer, and
 * callback in the simulation is a queued event, so queue depth is the
 * system-wide in-flight depth and the schedule delay (when - now at
 * schedule time) is each event's queue-wait attribution on the virtual
 * clock.
 */
struct EventLoopStats {
    uint64_t events_scheduled = 0;
    uint64_t events_processed = 0;
    uint64_t max_pending = 0; ///< high-water mark of the queue depth

    /// Name/value enumeration — single source of truth for metrics-
    /// registry linkage (obs::link_stats) and rendering.
    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("events_scheduled", events_scheduled);
        fn("events_processed", events_processed);
        fn("max_pending", max_pending);
    }
};

class EventLoop
{
  public:
    using Callback = std::function<void()>;
    /// Observes every dispatched event: (tick, schedule sequence number).
    using Observer = std::function<void(Tick, uint64_t)>;
    /// Lightweight dispatch hook for samplers (see set_probe).
    using Probe = std::function<void(Tick)>;

    EventLoop() = default;
    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /// Current virtual time.
    Tick now() const { return now_; }

    /// Schedules `fn` to run at absolute tick `when` (>= now()).
    void
    schedule_at(Tick when, Callback fn)
    {
        schedule_at(when, nullptr, std::move(fn));
    }

    /**
     * Tagged variant: `tag` must be a string literal (or otherwise
     * immortal). When the host profiler is enabled the dispatch runs
     * inside a "sim.cb.<tag>" scope with host-clock queue-wait
     * attribution; untagged events fall under "sim.cb.untagged".
     */
    void schedule_at(Tick when, const char *tag, Callback fn);

    /// Schedules `fn` to run `delay` ticks from now.
    void
    schedule_after(Tick delay, Callback fn)
    {
        schedule_at(now_ + delay, nullptr, std::move(fn));
    }

    /// Tagged variant of schedule_after (see tagged schedule_at).
    void
    schedule_after(Tick delay, const char *tag, Callback fn)
    {
        schedule_at(now_ + delay, tag, std::move(fn));
    }

    /// Runs events until the queue is empty. Returns events processed.
    uint64_t run();

    /// Runs events with time <= `until`; leaves later events queued.
    uint64_t run_until(Tick until);

    /**
     * Runs until `pred()` is true or the queue drains. Checks after each
     * event. Returns true if the predicate was satisfied.
     */
    bool run_until_pred(const std::function<bool()> &pred);

    /// Runs exactly `n` events (or fewer if the queue drains).
    uint64_t run_events(uint64_t n);

    bool empty() const { return queue_.empty(); }
    size_t pending() const { return queue_.size(); }
    uint64_t events_processed() const { return stats_.events_processed; }

    /// Cumulative scheduling counters (stable address for linkage).
    const EventLoopStats &stats() const { return stats_; }
    /// Distribution of (when - now) at schedule time, in ns: how far
    /// into the future each event was queued (device service delays,
    /// timer waits). Stable address; link via obs::link_histogram.
    const Histogram &sched_delay_hist() const { return sched_delay_ns_; }

    /**
     * Installs a per-event dispatch hook (pass nullptr to remove). The
     * observer fires before each event's callback runs, receiving the
     * event's tick and schedule sequence number. Because the loop is
     * deterministic, the observed (tick, seq) stream identifies a
     * schedule exactly: the crash-point explorer hashes it to prove a
     * replay followed the recorded schedule.
     */
    void set_observer(Observer obs) { observer_ = std::move(obs); }

    /**
     * Installs a sampling hook (pass nullptr to remove), independent of
     * the observer slot so the crash-point explorer and a timeline
     * sampler can coexist. Fires once per dispatched event, after the
     * event's callback runs, so a sample taken at a boundary reflects
     * all work dispatched at ticks up to and including it. The probe
     * must not schedule events or mutate simulation state — it exists
     * so a sampler can notice virtual-time boundaries lazily without
     * keeping the queue artificially non-empty.
     */
    void set_probe(Probe p) { probe_ = std::move(p); }

    /// Advances the clock with no event (e.g. idle gaps in workloads).
    void
    advance_to(Tick t)
    {
        if (t > now_)
            now_ = t;
    }

  private:
    struct Event {
        Tick when;
        uint64_t seq;
        Callback fn;
        const char *tag;     ///< profiler callback tag (may be null)
        uint64_t sched_host; ///< host ns at schedule time; 0 = unstamped
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool pop_and_run();

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0;
    uint64_t next_seq_ = 0;
    EventLoopStats stats_;
    Histogram sched_delay_ns_;
    Observer observer_;
    Probe probe_;
};

} // namespace raizn
