#include "array/raid_mode.h"

namespace raizn {

std::string_view
to_string(RaidMode mode)
{
    switch (mode) {
      case RaidMode::kRaid0: return "raid0";
      case RaidMode::kRaid1: return "raid1";
      case RaidMode::kRaid5: return "raid5";
      case RaidMode::kRaid6: return "raid6";
      case RaidMode::kRaid10: return "raid10";
      case RaidMode::kAuto: return "auto";
      case RaidMode::kRaizn: return "raizn";
      case RaidMode::kMdraid: return "mdraid";
    }
    return "?";
}

bool
parse_raid_mode(const std::string &s, RaidMode *out)
{
    if (s == "raid0") {
        *out = RaidMode::kRaid0;
    } else if (s == "raid1") {
        *out = RaidMode::kRaid1;
    } else if (s == "raid5") {
        *out = RaidMode::kRaid5;
    } else if (s == "raid6") {
        *out = RaidMode::kRaid6;
    } else if (s == "raid10") {
        *out = RaidMode::kRaid10;
    } else if (s == "auto") {
        *out = RaidMode::kAuto;
    } else if (s == "raizn") {
        *out = RaidMode::kRaizn;
    } else if (s == "mdraid") {
        *out = RaidMode::kMdraid;
    } else {
        return false;
    }
    return true;
}

uint32_t
fault_tolerance(RaidMode mode)
{
    switch (mode) {
      case RaidMode::kRaid0:
        return 0;
      case RaidMode::kRaid6:
        return 2;
      case RaidMode::kRaid1:
      case RaidMode::kRaid5:
      case RaidMode::kRaid10:
      case RaidMode::kAuto:
      case RaidMode::kRaizn:
      case RaidMode::kMdraid:
        return 1;
    }
    return 0;
}

} // namespace raizn
