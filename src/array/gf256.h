/**
 * @file
 * GF(2^8) arithmetic for RAID-6 Q parity (polynomial 0x11d, generator
 * g = 2), the same field the kernel's raid6 engine uses. Q for a
 * stripe is Q = sum_i g^i * D_i; together with P = XOR(D_i) any two
 * lost data units (or one data unit plus P or Q) are recoverable.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace raizn::gf256 {

uint8_t mul(uint8_t a, uint8_t b);
uint8_t inv(uint8_t a);
/// g^e for generator g = 2 (e taken mod 255).
uint8_t exp2(unsigned e);

/// acc ^= g^coeff_exp * src, byte-wise over `len` bytes.
void accumulate(uint8_t *acc, const uint8_t *src, size_t len,
                unsigned coeff_exp);

/**
 * Recovers two lost data units x < y of a stripe with data-unit count
 * `nunits` from the surviving units plus P' and Q', where `p` holds
 * XOR of the surviving data units XOR parity (i.e. P ^ known D_i) and
 * `q` holds Q ^ sum(g^i * known D_i). On return `dx`/`dy` hold the
 * reconstructed units. All buffers are `len` bytes.
 */
void solve_two(uint8_t *dx, uint8_t *dy, const uint8_t *p,
               const uint8_t *q, size_t len, unsigned x, unsigned y);

} // namespace raizn::gf256
