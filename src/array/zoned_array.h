/**
 * @file
 * ZonedArray: the shared interface every RAID engine in this repo sits
 * behind — the paper's RaiznVolume, the md-raid comparison stack, and
 * the generic ZonedEngine modes (RAID-0/1/5/6/10, auto). The base owns
 * everything the modes would otherwise re-implement: the retry/backoff
 * + watchdog submit path (src/fault), per-device health tracking with
 * escalation into mark_device_failed, hot-spare bookkeeping, and the
 * metrics/trace attachment (per-device DeviceStats + latency
 * histograms, health counters, total-latency histograms).
 *
 * Subclasses provide the data path (read/write/flush/zone management),
 * the failure semantics (mark_device_failed / rebuild), and a stats
 * struct; the base reaches into that struct through StatCells so each
 * engine keeps its own counter layout and metric names.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/raid_mode.h"
#include "fault/health.h"
#include "fault/retry.h"
#include "zns/block_device.h"

namespace raizn {

namespace obs {
class MetricsRegistry;
class TraceRecorder;
class LatencyMetric;
class Timeline;
} // namespace obs

class EventLoop;

/// Flags on a logical sequential write (kernel REQ_FUA / REQ_PREFLUSH).
struct WriteFlags {
    bool fua = false;
    bool preflush = false;
    /// Byte-provenance of this logical write. Defaults to user data;
    /// internal writers reusing the volume write path (env GC
    /// relocation) override it so their data sub-I/Os carry the real
    /// cause and stay out of the acked-user-bytes WAF denominator.
    /// Parity/WAL fan-out keeps its own cause regardless of origin.
    obs::Cause origin = obs::Cause::kUserData;
};

using StatusCb = std::function<void(Status)>;

class ZonedArray
{
  public:
    using ProgressCb = std::function<void(uint64_t done, uint64_t total)>;

    /// Retry/backoff, watchdog, and health-escalation knobs.
    struct ResilienceConfig {
        RetryPolicy retry;
        HealthConfig health;
    };

    /// Outcome of one scrub pass over the written stripes.
    struct ScrubReport {
        uint64_t stripes_scanned = 0;
        uint64_t parity_mismatches = 0; ///< XOR(data) != parity
        uint64_t crc_mismatches = 0; ///< units failing their checksums
        uint64_t repaired_units = 0; ///< data units read-repaired
        uint64_t repaired_parity = 0; ///< parity units rewritten
        uint64_t unrecoverable = 0; ///< mismatches scrub could not fix
    };

    virtual ~ZonedArray();
    ZonedArray(const ZonedArray &) = delete;
    ZonedArray &operator=(const ZonedArray &) = delete;

    // ---- Identity / geometry ---------------------------------------
    virtual RaidMode mode() const = 0;
    /// Device failures this array keeps serving through.
    virtual uint32_t fault_tolerance() const = 0;
    /// False for arrays over conventional devices (md-raid): no zones,
    /// reset/finish are unsupported and writes may overwrite.
    virtual bool zoned() const { return true; }
    virtual uint64_t capacity() const = 0;
    virtual uint32_t num_zones() const { return 0; }
    virtual uint64_t zone_capacity() const { return 0; }
    /// Report Zones for the logical device (zoned arrays only).
    virtual Result<ZoneInfo> zone_info(uint32_t zone) const;

    // ---- Data path -------------------------------------------------
    virtual void read(uint64_t lba, uint32_t nsectors, IoCallback cb) = 0;
    /// Sequential zone write (zoned) / positional write (conventional);
    /// `data` empty = timing-only.
    virtual void write(uint64_t lba, std::vector<uint8_t> data,
                       WriteFlags flags, IoCallback cb) = 0;
    virtual void write_len(uint64_t lba, uint32_t nsectors,
                           WriteFlags flags, IoCallback cb) = 0;
    virtual void flush(IoCallback cb) = 0;
    virtual void reset_zone(uint32_t zone, IoCallback cb);
    virtual void finish_zone(uint32_t zone, IoCallback cb);

    // ---- Fault management ------------------------------------------
    /// Marks a device failed: reads reconstruct, writes omit it.
    virtual void mark_device_failed(uint32_t dev) = 0;
    /// First failed device, -1 when the array is healthy.
    virtual int failed_device() const = 0;
    virtual bool degraded() const { return failed_device() >= 0; }
    /// Rebuilds a replaced device from redundancy.
    virtual void rebuild_device(uint32_t dev, ProgressCb progress,
                                StatusCb done);
    /// Verifies redundancy (parity equations / mirror equality / CRC
    /// catalogs) across written stripes.
    virtual Status scrub_all(ScrubReport *report = nullptr);

    /// Replaces the retry policy and health thresholds (resets health
    /// history). Call before issuing IO.
    void set_resilience(const ResilienceConfig &rc);
    const HealthMonitor &health() const { return *health_; }

    /**
     * Attaches a hot spare (a fresh, formatted-blank device with the
     * same geometry). Non-owning; the spare must outlive the array or
     * be detached with set_spare(nullptr).
     */
    void set_spare(BlockDevice *spare) { spare_ = spare; }
    bool has_spare() const { return spare_ != nullptr; }

    // ---- Observability ---------------------------------------------
    /**
     * Hooks this array into the unified observability layer (src/obs):
     * the subclass stats struct under "<metric_prefix>.*", per-device
     * DeviceStats under "<dev_metric_prefix>.dev<i>.*" plus latency
     * histograms, and (when link_health_metrics()) per-device health
     * counters under "<metric_prefix>.health.dev<i>.*". Either pointer
     * may be null; pass nulls to detach.
     */
    void attach_observability(obs::MetricsRegistry *reg,
                              obs::TraceRecorder *trace);
    obs::TraceRecorder *trace_recorder() const { return trace_; }
    /// Registers gauge-refresh probes for timeseries sampling.
    virtual void install_timeline(obs::Timeline *tl) { (void)tl; }

    /**
     * Hooks every member device (and a later-promoted spare) into the
     * byte-provenance ledger: binds slot i to devs_[i] and installs
     * the device back-pointers, so device-layer recording and the
     * dev_submit untagged-funnel check both go live. Pass null to
     * detach. The acked-user-byte denominators (note_user_read/write)
     * are the volume subclass's job at its ack points.
     */
    void attach_ledger(obs::IoLedger *ledger);
    obs::IoLedger *ledger() const { return ledger_; }

    // ---- Introspection ---------------------------------------------
    uint32_t num_devices() const
    {
        return static_cast<uint32_t>(devs_.size());
    }
    BlockDevice *device(uint32_t i) const { return devs_[i]; }

  protected:
    /**
     * Pointers into the subclass's stats struct for the counters the
     * base maintains. Formed in the subclass's member-init list before
     * the stats struct is initialized — legal (no reads happen until
     * IO runs) and it keeps each engine's counter layout and metric
     * names intact.
     */
    struct StatCells {
        uint64_t *io_retries = nullptr;
        uint64_t *io_timeouts = nullptr;
        uint64_t *dev_errors = nullptr;
        uint64_t *spares_promoted = nullptr;
    };

    ZonedArray(EventLoop *loop, std::vector<BlockDevice *> devs,
               StatCells cells);

    /// Data-path device submit: stage span + per-device latency, then
    /// the retrier/watchdog. Subclass admin paths may bypass it.
    void dev_submit(uint32_t dev, IoRequest req, IoCallback cb);

    /**
     * Called with a persistent (post-retry) device error: counts it
     * and escalates to mark_device_failed when the health evidence
     * warrants. Returns true when `dev` is now treated as failed, i.e.
     * the caller should degrade instead of propagating.
     */
    bool escalate_dev_error(uint32_t dev, const Status &s);

    /// Swaps the attached spare into slot `dev` and resets its health
    /// history. Subclasses wrap this with their own bookkeeping.
    void promote_spare_base(uint32_t dev);

    // ---- Subclass hooks --------------------------------------------
    /// Metric namespace for the array's own stats ("raizn", "raid5").
    virtual std::string metric_prefix() const = 0;
    /// Namespace for per-device stats ("zns" for raizn — historical —
    /// and the metric prefix for everything else).
    virtual std::string dev_metric_prefix() const
    {
        return metric_prefix();
    }
    /// Links the subclass stats struct into `reg` (obs::link_stats).
    virtual void link_stats_hook(obs::MetricsRegistry &reg) = 0;
    /// Whether per-device health counters get registry entries.
    virtual bool link_health_metrics() const { return true; }
    /// Re-wire anything that caches the retrier (set_resilience
    /// recreates it).
    virtual void on_resilience_changed() {}
    /// Health-monitor escalation edges land here (invoked only after
    /// construction completes). Default: fail the device on kFailed.
    virtual void on_health_event(uint32_t dev, HealthEvent ev);
    /// Whether `dev` is the/a failed device from escalate_dev_error's
    /// point of view. Multi-failure engines override.
    virtual bool is_marked_failed(uint32_t dev) const
    {
        return failed_device() == static_cast<int>(dev);
    }

    EventLoop *loop_;
    std::vector<BlockDevice *> devs_;
    StatCells cells_;

    // Resilience layer (hoisted from RaiznVolume / MdVolume).
    std::unique_ptr<HealthMonitor> health_;
    std::unique_ptr<IoRetrier> retrier_;
    BlockDevice *spare_ = nullptr; ///< non-owning hot spare

    // Observability: null when detached. Latency handles are resolved
    // once in attach_observability so the hot path never performs a
    // name lookup; the registry pointer is kept so health counters can
    // be re-linked when set_resilience recreates the monitor.
    obs::MetricsRegistry *reg_ = nullptr;
    obs::TraceRecorder *trace_ = nullptr;
    obs::IoLedger *ledger_ = nullptr;
    struct DevObs {
        obs::LatencyMetric *read_ns = nullptr;
        obs::LatencyMetric *write_ns = nullptr;
        obs::LatencyMetric *flush_ns = nullptr;
        obs::LatencyMetric *other_ns = nullptr;
    };
    std::vector<DevObs> dev_obs_;
    obs::LatencyMetric *write_lat_ = nullptr; ///< <prefix>.write.total_ns
    obs::LatencyMetric *read_lat_ = nullptr; ///< <prefix>.read.total_ns

    /// Guards scheduled events against array destruction.
    std::shared_ptr<bool> alive_;
};

} // namespace raizn
