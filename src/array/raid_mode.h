/**
 * @file
 * RAID mode taxonomy for the pluggable ZonedArray engines. kRaizn and
 * kMdraid name the two hand-built volume stacks; the rest are the
 * generic zoned engines implemented by ZonedEngine.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace raizn {

enum class RaidMode : uint8_t {
    kRaid0, ///< stripe, no redundancy
    kRaid1, ///< zone mirrors across all members
    kRaid5, ///< rotating single parity over zones
    kRaid6, ///< rotating dual (P+Q) parity over zones
    kRaid10, ///< mirror pairs, striped across pairs
    kAuto, ///< per-zone: RAID-1 when hot, RAID-5/6 when cold
    kRaizn, ///< the paper's volume (parity + partial-parity log)
    kMdraid, ///< kernel-md-style RAID-5 over conventional devices
};

std::string_view to_string(RaidMode mode);

/// Parses "raid0"/"raid1"/"raid5"/"raid6"/"raid10"/"auto"/"raizn"/
/// "mdraid". Returns false (leaving `out` untouched) on anything else.
bool parse_raid_mode(const std::string &s, RaidMode *out);

/// Device failures the mode tolerates while staying readable. RAID-10
/// can survive more than one when failures land in distinct mirror
/// pairs, but only one is guaranteed. kAuto reports its worst zone
/// kind (parity => 1).
uint32_t fault_tolerance(RaidMode mode);

} // namespace raizn
