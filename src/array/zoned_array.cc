#include "array/zoned_array.h"

#include <utility>

#include "common/logging.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

/// Fallback span label when the submitter didn't annotate a stage.
const char *
default_dev_stage(IoOp op)
{
    switch (op) {
    case IoOp::kRead:
        return "dev.read";
    case IoOp::kWrite:
        return "dev.write";
    case IoOp::kAppend:
        return "dev.append";
    case IoOp::kFlush:
        return "dev.flush";
    case IoOp::kZoneReset:
        return "dev.zone_reset";
    case IoOp::kZoneFinish:
        return "dev.zone_finish";
    case IoOp::kZoneOpen:
        return "dev.zone_open";
    case IoOp::kZoneClose:
        return "dev.zone_close";
    }
    return "dev.io";
}

} // namespace

ZonedArray::ZonedArray(EventLoop *loop, std::vector<BlockDevice *> devs,
                       StatCells cells)
    : loop_(loop), devs_(std::move(devs)), cells_(cells)
{
    health_ = std::make_unique<HealthMonitor>(
        static_cast<uint32_t>(devs_.size()));
    health_->set_escalation([this](uint32_t dev, HealthEvent ev) {
        on_health_event(dev, ev);
    });
    retrier_ = std::make_unique<IoRetrier>(loop_, RetryPolicy{},
                                           health_.get(),
                                           cells_.io_retries,
                                           cells_.io_timeouts);
    alive_ = std::make_shared<bool>(true);
}

ZonedArray::~ZonedArray()
{
    *alive_ = false;
}

Result<ZoneInfo>
ZonedArray::zone_info(uint32_t zone) const
{
    (void)zone;
    return Status(StatusCode::kNotSupported,
                  "array is not zone-addressable");
}

void
ZonedArray::reset_zone(uint32_t zone, IoCallback cb)
{
    (void)zone;
    loop_->schedule_after(1, [cb = std::move(cb)] {
        IoResult r;
        r.status = Status(StatusCode::kNotSupported,
                          "zone reset unsupported on this array");
        cb(std::move(r));
    });
}

void
ZonedArray::finish_zone(uint32_t zone, IoCallback cb)
{
    (void)zone;
    loop_->schedule_after(1, [cb = std::move(cb)] {
        IoResult r;
        r.status = Status(StatusCode::kNotSupported,
                          "zone finish unsupported on this array");
        cb(std::move(r));
    });
}

void
ZonedArray::rebuild_device(uint32_t dev, ProgressCb progress, StatusCb done)
{
    (void)dev;
    (void)progress;
    loop_->schedule_after(1, [done = std::move(done)] {
        if (done)
            done(Status(StatusCode::kNotSupported,
                        "rebuild unsupported on this array"));
    });
}

Status
ZonedArray::scrub_all(ScrubReport *report)
{
    (void)report;
    return Status(StatusCode::kNotSupported,
                  "scrub unsupported on this array");
}

void
ZonedArray::set_resilience(const ResilienceConfig &rc)
{
    health_ = std::make_unique<HealthMonitor>(
        static_cast<uint32_t>(devs_.size()), rc.health);
    health_->set_escalation([this](uint32_t dev, HealthEvent ev) {
        on_health_event(dev, ev);
    });
    retrier_ = std::make_unique<IoRetrier>(loop_, rc.retry, health_.get(),
                                           cells_.io_retries,
                                           cells_.io_timeouts);
    on_resilience_changed();
    // The monitor was replaced: any linked health counters would
    // dangle, so refresh the registry bindings in place.
    if (reg_ != nullptr)
        attach_observability(reg_, trace_);
}

void
ZonedArray::attach_observability(obs::MetricsRegistry *reg,
                                 obs::TraceRecorder *trace)
{
    reg_ = reg;
    trace_ = trace;
    dev_obs_.clear();
    write_lat_ = nullptr;
    read_lat_ = nullptr;
    if (reg == nullptr)
        return;
    const std::string self = metric_prefix();
    link_stats_hook(*reg);
    write_lat_ = reg->latency(self + ".write.total_ns");
    read_lat_ = reg->latency(self + ".read.total_ns");
    dev_obs_.resize(devs_.size());
    const std::string dev_ns = dev_metric_prefix();
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        std::string prefix = strprintf("%s.dev%u", dev_ns.c_str(), d);
        obs::link_stats(*reg, prefix, devs_[d]->stats());
        dev_obs_[d].read_ns = reg->latency(prefix + ".read_ns");
        dev_obs_[d].write_ns = reg->latency(prefix + ".write_ns");
        dev_obs_[d].flush_ns = reg->latency(prefix + ".flush_ns");
        dev_obs_[d].other_ns = reg->latency(prefix + ".other_ns");
        if (link_health_metrics())
            obs::link_stats(*reg,
                            strprintf("%s.health.dev%u", self.c_str(), d),
                            health_->device(d));
    }
}

void
ZonedArray::attach_ledger(obs::IoLedger *ledger)
{
    ledger_ = ledger;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (ledger != nullptr)
            ledger->attach_device(d, devs_[d]);
        devs_[d]->set_ledger(ledger, d);
    }
}

void
ZonedArray::dev_submit(uint32_t dev, IoRequest req, IoCallback cb)
{
    // Provenance funnel: every data-path sub-I/O must arrive tagged.
    // The untagged note makes the conservation audit fail loudly and
    // name the stage, instead of silently misattributing the bytes.
    if (ledger_ != nullptr && req.cause == obs::Cause::kUntagged)
        ledger_->note_untagged_submit(req.trace_stage);
    if (trace_ != nullptr || !dev_obs_.empty()) {
        const char *stage = req.trace_stage != nullptr
            ? req.trace_stage
            : default_dev_stage(req.op);
        uint64_t token = trace_ != nullptr
            ? trace_->begin_span(stage, req.trace_req,
                                 obs::kTrackDevBase + dev, loop_->now())
            : 0;
        obs::LatencyMetric *lat = nullptr;
        if (!dev_obs_.empty()) {
            const DevObs &o = dev_obs_[dev];
            switch (req.op) {
            case IoOp::kRead:
                lat = o.read_ns;
                break;
            case IoOp::kWrite:
            case IoOp::kAppend:
                lat = o.write_ns;
                break;
            case IoOp::kFlush:
                lat = o.flush_ns;
                break;
            default:
                lat = o.other_ns;
                break;
            }
        }
        Tick t0 = loop_->now();
        cb = [this, token, lat, t0, inner = std::move(cb)](IoResult r) {
            Tick now = loop_->now();
            if (trace_ != nullptr && token != 0)
                trace_->end_span(token, now);
            if (lat != nullptr)
                lat->record(now - t0);
            inner(std::move(r));
        };
    }
    retrier_->submit(devs_[dev], dev, std::move(req), std::move(cb));
}

bool
ZonedArray::escalate_dev_error(uint32_t dev, const Status &s)
{
    ++*cells_.dev_errors;
    if (s.code() == StatusCode::kOffline) {
        // An abrupt device death is non-retryable and bypasses the
        // retrier's health accounting; record the terminal failure so
        // the health trail matches the failover decision.
        health_->record_op_failure(dev);
        mark_device_failed(dev);
    } else if (health_->should_fail(dev)) {
        mark_device_failed(dev);
    }
    return is_marked_failed(dev);
}

void
ZonedArray::promote_spare_base(uint32_t dev)
{
    devs_[dev] = spare_;
    spare_ = nullptr;
    health_->reset_device(dev);
    ++*cells_.spares_promoted;
    // The slot now points at a different physical device whose
    // counters started from zero: re-baseline the audit marks and
    // route its recording into this slot.
    if (ledger_ != nullptr) {
        ledger_->rebind_device(dev, devs_[dev]);
        devs_[dev]->set_ledger(ledger_, dev);
    }
}

void
ZonedArray::on_health_event(uint32_t dev, HealthEvent ev)
{
    if (ev == HealthEvent::kFailed &&
        failed_device() != static_cast<int>(dev))
        mark_device_failed(dev);
}

} // namespace raizn
