/**
 * @file
 * ZonedEngine: the generic multi-mode RAID engine over ZNS devices,
 * implementing the classic levels behind the ZonedArray interface —
 * RAID-0 (stripe, no redundancy), RAID-1 (zone mirrors), RAID-5/6
 * (rotating single/dual parity over zones), RAID-10 (mirror pairs,
 * striped), and a per-zone "auto" mode that mirrors hot zones and
 * parity-protects cold ones.
 *
 * Layout: physical zone 0 of every member holds a replicated,
 * CRC-guarded write-ahead journal (reset intents/completions, auto-mode
 * kind decisions, rebuild re-join markers); logical zone z maps to
 * physical zone z+1 on every member. A stripe occupies the same
 * su_sectors-row window on every member, with left-symmetric parity
 * rotation for RAID-5/6.
 *
 * Crash guarantees vs the paper's RaiznVolume: the engine keeps tail
 * (incomplete) stripe parity in memory only, so degraded reads of open
 * stripes survive a crash only for RAIZN (partial-parity log). The
 * engine's durability contract is the standard one — acked FUA/flushed
 * data is readable after power loss on a healthy array; redundant
 * modes additionally serve it under allowed device failures at
 * runtime. Zones recovered non-empty at mount are frozen (read-only
 * until reset).
 */
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "array/zoned_array.h"

namespace raizn {

struct EngineConfig {
    RaidMode mode = RaidMode::kRaid5;
    uint32_t su_sectors = 16; ///< stripe-unit rows per chunk
    /// auto mode: a zone is "hot" (mirrored) once its reset generation
    /// reaches this count; colder zones get parity.
    uint64_t auto_hot_resets = 2;
};

/// Counters exposed for tests and the cross-mode fault sweep.
struct EngineStats {
    uint64_t logical_reads = 0;
    uint64_t logical_writes = 0;
    uint64_t sectors_read = 0;
    uint64_t sectors_written = 0;
    uint64_t parity_writes = 0; ///< P stripe-unit writes issued
    uint64_t q_parity_writes = 0; ///< Q stripe-unit writes (RAID-6)
    uint64_t flushes = 0;
    uint64_t fua_writes = 0;
    uint64_t fua_dependency_flushes = 0; ///< flushes forced by FUA acks
    uint64_t zone_resets = 0;
    uint64_t zone_finishes = 0;
    uint64_t wal_appends = 0; ///< journal records written
    uint64_t degraded_reads = 0;
    uint64_t reconstructed_sectors = 0;
    uint64_t io_retries = 0; ///< device commands retried after backoff
    uint64_t io_timeouts = 0; ///< watchdog deadline expirations
    uint64_t dev_errors = 0; ///< persistent (post-retry) device errors
    uint64_t crc_mismatches = 0; ///< reads failing checksum validation
    uint64_t read_repairs = 0; ///< units re-served from redundancy
    uint64_t scrubbed_stripes = 0;
    uint64_t auto_failovers = 0; ///< health-driven failovers started
    uint64_t spares_promoted = 0;
    uint64_t zones_rebuilt = 0;
    uint64_t auto_mirror_zones = 0; ///< auto-mode hot (mirror) decisions
    uint64_t auto_parity_zones = 0; ///< auto-mode cold (parity) decisions

    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("logical_reads", logical_reads);
        fn("logical_writes", logical_writes);
        fn("sectors_read", sectors_read);
        fn("sectors_written", sectors_written);
        fn("parity_writes", parity_writes);
        fn("q_parity_writes", q_parity_writes);
        fn("flushes", flushes);
        fn("fua_writes", fua_writes);
        fn("fua_dependency_flushes", fua_dependency_flushes);
        fn("zone_resets", zone_resets);
        fn("zone_finishes", zone_finishes);
        fn("wal_appends", wal_appends);
        fn("degraded_reads", degraded_reads);
        fn("reconstructed_sectors", reconstructed_sectors);
        fn("io_retries", io_retries);
        fn("io_timeouts", io_timeouts);
        fn("dev_errors", dev_errors);
        fn("crc_mismatches", crc_mismatches);
        fn("read_repairs", read_repairs);
        fn("scrubbed_stripes", scrubbed_stripes);
        fn("auto_failovers", auto_failovers);
        fn("spares_promoted", spares_promoted);
        fn("zones_rebuilt", zones_rebuilt);
        fn("auto_mirror_zones", auto_mirror_zones);
        fn("auto_parity_zones", auto_parity_zones);
    }

    /// One-line "key=value" rendering, same format as VolumeStats.
    std::string dump() const;
};

class ZonedEngine : public ZonedArray
{
  public:
    /// Per-zone layout class (auto mode decides per generation).
    enum class ZoneKind : uint8_t {
        kStripe0, ///< striped, no redundancy (RAID-0)
        kMirror, ///< full mirror on every member (RAID-1, hot auto)
        kMirrorPairs, ///< striped across mirror pairs (RAID-10)
        kParity, ///< rotating single parity (RAID-5, cold auto)
        kDualParity, ///< rotating P+Q (RAID-6)
    };

    /**
     * Formats a fresh array over `devs` (all zoned, identical
     * geometry, at least the mode's minimum member count; RAID-10
     * needs an even count). Devices must be factory-blank.
     */
    static Result<std::unique_ptr<ZonedEngine>>
    create(EventLoop *loop, std::vector<BlockDevice *> devs,
           const EngineConfig &cfg);

    /**
     * Mounts an existing array: replays the journal (rolling forward
     * interrupted resets), reconciles per-device write pointers into
     * per-zone recovered fills, and freezes every non-empty zone
     * (read-only until reset). Requires data-storing devices.
     */
    static Result<std::unique_ptr<ZonedEngine>>
    mount(EventLoop *loop, std::vector<BlockDevice *> devs,
          const EngineConfig &cfg);

    ~ZonedEngine() override;

    // ---- Identity / geometry ---------------------------------------
    RaidMode mode() const override { return cfg_.mode; }
    uint32_t fault_tolerance() const override
    {
        return raizn::fault_tolerance(cfg_.mode);
    }
    uint64_t capacity() const override
    {
        return static_cast<uint64_t>(nzones_) * zone_cap_;
    }
    uint32_t num_zones() const override { return nzones_; }
    uint64_t zone_capacity() const override { return zone_cap_; }
    Result<ZoneInfo> zone_info(uint32_t zone) const override;

    // ---- Data path -------------------------------------------------
    void read(uint64_t lba, uint32_t nsectors, IoCallback cb) override;
    void write(uint64_t lba, std::vector<uint8_t> data, WriteFlags flags,
               IoCallback cb) override;
    void write_len(uint64_t lba, uint32_t nsectors, WriteFlags flags,
                   IoCallback cb) override;
    void flush(IoCallback cb) override;
    void reset_zone(uint32_t zone, IoCallback cb) override;
    void finish_zone(uint32_t zone, IoCallback cb) override;

    // ---- Fault management ------------------------------------------
    void mark_device_failed(uint32_t dev) override;
    int failed_device() const override;
    bool degraded() const override { return nfailed_ > 0; }
    /// True once more devices failed than the mode tolerates: IO
    /// touching lost chunks returns errors from then on.
    bool data_loss() const { return nfailed_ > fault_tolerance(); }
    bool device_failed(uint32_t dev) const { return failed_devs_[dev]; }
    void rebuild_device(uint32_t dev, ProgressCb progress,
                        StatusCb done) override;
    Status scrub_all(ScrubReport *report = nullptr) override;

    /// Same shape as RaiznVolume::LifecycleConfig: promote the spare
    /// and rebuild automatically when the health monitor fails a
    /// device.
    struct LifecycleConfig {
        bool auto_rebuild = true;
        std::function<void(uint32_t dev, Status s)> on_rebuild_done;
    };
    void set_lifecycle(LifecycleConfig lc) { lifecycle_ = std::move(lc); }

    // ---- Introspection (crash oracle + tests) ----------------------
    const EngineStats &stats() const { return stats_; }
    const EngineConfig &config() const { return cfg_; }
    uint32_t su_sectors() const { return cfg_.su_sectors; }
    /// Physical zone index backing logical `zone` on every member.
    uint32_t phys_zone(uint32_t zone) const { return zone + 1; }
    ZoneKind zone_kind(uint32_t zone) const;
    bool zone_kind_decided(uint32_t zone) const;
    uint64_t zone_gen(uint32_t zone) const;
    bool zone_frozen(uint32_t zone) const;
    bool zone_finished(uint32_t zone) const;
    /// Trusted-member bitmap for `zone` (mirror staleness tracking).
    uint64_t zone_participants(uint32_t zone) const;
    /// Data stripe units per stripe for `zone`'s kind.
    uint32_t data_units(uint32_t zone) const;
    /// Member holding data unit `u` of stripe `stripe` (mirror kinds:
    /// the first mirror of the unit).
    uint32_t chunk_dev(uint32_t zone, uint64_t stripe, uint32_t u) const;
    /// Member holding P for the stripe, -1 for non-parity kinds.
    int parity_dev(uint32_t zone, uint64_t stripe) const;
    /// Member holding Q for the stripe, -1 unless dual parity.
    int q_dev(uint32_t zone, uint64_t stripe) const;
    /// Logical sectors of `zone` readable without member `down`
    /// (mirror kinds consult recovered per-member fills; parity kinds
    /// reconstruct at runtime, so the full fill is readable).
    uint64_t degraded_fill(uint32_t zone, uint32_t down) const;
    /// Journal slots consumed / available.
    uint64_t wal_used() const { return wal_next_; }
    uint64_t wal_slots() const { return wal_slots_; }

  protected:
    std::string metric_prefix() const override
    {
        return std::string(to_string(cfg_.mode));
    }
    void link_stats_hook(obs::MetricsRegistry &reg) override;
    bool is_marked_failed(uint32_t dev) const override
    {
        return failed_devs_[dev];
    }

  private:
    /**
     * In-memory accumulator for the open (tail) stripe of a
     * parity-protected zone: holds the stripe's data until parity is
     * computed and acknowledged, and serves degraded reads of sectors
     * whose parity is not on media yet. Volatile by design — this is
     * the write hole the paper's partial-parity log closes; see
     * DESIGN.md for the durability contract difference.
     */
    struct TailBuf {
        std::vector<uint8_t> data; ///< su * U sectors (store mode)
        uint64_t filled = 0; ///< stripe sectors submitted so far
        bool complete = false;
        uint32_t parity_pending = 0; ///< parity writes awaiting ack
    };

    struct WriteCtx;
    struct FlushBarrier;

    /// One journal slot (a full sector on media, CRC-guarded).
    struct WalRecord {
        enum Type : uint32_t {
            kResetIntent = 1, ///< reset decided; physical resets follow
            kResetDone = 2, ///< resets done; participants = live set
            kKind = 3, ///< auto mode: zone kind for this generation
            kJoin = 4, ///< rebuild re-validated `participants` bits
        };
        uint32_t type = 0;
        uint32_t zone = 0;
        uint64_t gen = 0;
        uint32_t kind = 0;
        uint64_t participants = 0;
    };

    /// Per-(member, physical zone) submit queue: keeps writes (and
    /// reads, for read-after-write ordering) strictly sequential.
    struct Chain {
        bool busy = false;
        std::deque<std::pair<IoRequest, IoCallback>> q;
    };

    /// Logical zone descriptor.
    struct EZone {
        uint64_t fill = 0; ///< submitted logical sectors
        uint64_t gen = 0; ///< reset generation
        ZoneKind kind = ZoneKind::kParity;
        bool kind_decided = false; ///< auto: kind journaled for this gen
        bool finished = false;
        bool finish_pending = false;
        bool resetting = false;
        bool frozen = false; ///< recovered non-empty: read-only
        /// Members holding current-generation data (bit per slot);
        /// devices excluded from a degraded reset stay untrusted until
        /// a rebuild re-joins them.
        uint64_t participants = ~0ull;
        std::map<uint64_t, TailBuf> tails; ///< by stripe index
        std::vector<uint32_t> crcs; ///< per logical sector (store mode)
        std::vector<bool> crc_valid;
        /// Mount only: per-member recovered extent — logical sectors
        /// for mirror kinds, physical rows otherwise.
        std::vector<uint64_t> rec_fill;
        /// Serializes the async prefix of zone ops (preflush barriers,
        /// auto-kind journaling, reset/finish sequences) so chunk
        /// issuance order matches logical order.
        std::deque<std::function<void(std::function<void()>)>> wq;
        bool wq_busy = false;
    };

    ZonedEngine(EventLoop *loop, std::vector<BlockDevice *> devs,
                const EngineConfig &cfg);

    // engine.cc — geometry and placement
    static Status validate(const std::vector<BlockDevice *> &devs,
                           const EngineConfig &cfg);
    ZoneKind fixed_kind() const; ///< kind for non-auto modes
    uint32_t units_of(ZoneKind k) const;
    /// Absolute device LBA of row `row` in logical zone `zone`.
    uint64_t dev_row_lba(uint32_t zone, uint64_t row) const;
    bool dev_live(uint32_t dev) const;
    /// True when `dev` cannot serve IO for `zone` right now: failed,
    /// untrusted (stale after an excluded reset), or the rebuild
    /// target for a zone not rebuilt yet.
    bool dev_down_for_zone(uint32_t dev, uint32_t zone) const;

    // engine.cc — submit plumbing
    void chain_submit(uint32_t dev, uint32_t phys_zone, IoRequest req,
                      IoCallback cb);
    void chain_advance(uint32_t dev, uint32_t phys_zone);
    /// Appends an async step to the zone's op queue; the step receives
    /// a completion thunk it must invoke once issuance is done.
    void zone_enqueue(uint32_t zone,
                      std::function<void(std::function<void()>)> step);
    void zone_advance(uint32_t zone);
    uint64_t track_io();
    void untrack_io(uint64_t id);
    /// Waits for every currently-tracked data IO, then flushes all
    /// live members, then `cb`.
    void barrier_flush(IoCallback cb);
    void issue_barrier_devices(std::shared_ptr<FlushBarrier> b);

    // engine.cc — journal
    void append_wal(WalRecord rec, StatusCb cb);
    static std::vector<uint8_t> encode_wal(const WalRecord &rec);
    static bool decode_wal(const uint8_t *sector, WalRecord *out);

    // engine.cc — write path
    void write_internal(uint64_t lba, std::vector<uint8_t> data,
                        uint32_t nsectors, WriteFlags flags,
                        IoCallback cb);
    void decide_zone_kind(uint32_t zone, std::function<void(Status)> cb);
    /// Synchronously enqueues the physical chunk writes for one
    /// logical write (data may be empty in timing mode).
    void issue_write(uint32_t zone, uint64_t off,
                     std::shared_ptr<std::vector<uint8_t>> data,
                     uint32_t nsectors, std::shared_ptr<WriteCtx> ctx);
    /// Accumulates `n` stripe sectors at stripe position `pos` into
    /// the zone's tail buffer; completes the stripe when full.
    void note_tail(uint32_t zone, uint64_t pos, uint32_t n,
                   const uint8_t *bytes);
    void complete_stripe(uint32_t zone, uint64_t stripe);
    void chunk_done(std::shared_ptr<WriteCtx> ctx, uint32_t dev,
                    const Status &s);
    void finish_write(std::shared_ptr<WriteCtx> ctx);
    void note_written_crcs(uint32_t zone, uint64_t off,
                           const uint8_t *bytes, uint32_t nsectors);

    // engine.cc — read path
    using DataCb = std::function<void(Status, std::vector<uint8_t>)>;
    void read_segment(uint32_t zone, uint64_t off, uint32_t len,
                      DataCb cb);
    /// Tries each candidate member in turn (CRC-verifying in store
    /// mode); `off` is in logical sectors for kMirror.
    void read_mirror(uint32_t zone, uint64_t off, uint32_t len,
                     std::shared_ptr<std::vector<uint32_t>> srcs,
                     size_t idx, DataCb cb);
    /// Reads rows [o, o+n) of data unit `u` in `stripe`, falling back
    /// to the tail buffer or parity reconstruction when the member is
    /// down or the payload fails CRC.
    void read_chunk(uint32_t zone, uint64_t stripe, uint32_t u,
                    uint64_t o, uint32_t n, DataCb cb);
    void reconstruct_chunk(uint32_t zone, uint64_t stripe, uint32_t u,
                           uint64_t o, uint32_t n, DataCb cb);
    bool crc_range_ok(uint32_t zone, uint64_t off, const uint8_t *bytes,
                      uint32_t nsectors) const;
    /// Members holding a replica of data unit `u` (placement only, no
    /// liveness filtering).
    std::vector<uint32_t> unit_devs(uint32_t zone, uint64_t stripe,
                                    uint32_t u) const;
    /// Filters `cands` down to members able to serve rows < `row_end`.
    std::vector<uint32_t> mirror_sources(uint32_t zone, uint64_t row_end,
                                         const std::vector<uint32_t> &cands)
        const;

    // engine_recover.cc — mount, rebuild, scrub
    Status run_mount();
    Status replay_wal();
    Status recover_zone(uint32_t zone);
    void rebuild_zone(uint32_t zone);
    void rebuild_mirror_rows(uint32_t zone, uint64_t row, uint64_t limit,
                             uint32_t src, StatusCb done);
    void rebuild_stripe_from(uint32_t zone, uint64_t stripe,
                             uint64_t limit, StatusCb done);
    void copy_wal_to_target(StatusCb done);
    void finish_rebuild(Status s);
    void maybe_start_auto_rebuild(uint32_t dev);
    Status scrub_zone(uint32_t zone, ScrubReport *rep);

    EngineConfig cfg_;
    uint32_t nzones_ = 0; ///< logical zones
    uint64_t zone_cap_ = 0; ///< logical sectors per zone
    uint64_t phys_cap_ = 0; ///< physical sectors per member zone
    bool store_data_ = true;

    std::vector<EZone> zones_;
    std::vector<bool> failed_devs_;
    uint32_t nfailed_ = 0;
    EngineStats stats_;

    // Journal (physical zone 0, replicated).
    uint64_t wal_slots_ = 0;
    uint64_t wal_next_ = 0;

    // Per-(member, phys zone) sequential submit chains.
    std::map<uint64_t, Chain> chains_;

    // Flush barrier bookkeeping: every data-path device write gets an
    // id at enqueue time; a barrier snapshots the live set and fires
    // once the snapshot drains.
    uint64_t next_io_id_ = 1;
    std::set<uint64_t> inflight_ios_;
    std::vector<std::shared_ptr<FlushBarrier>> barriers_;

    // Rebuild state.
    bool rebuilding_ = false;
    int rebuild_dev_ = -1;
    std::vector<bool> zone_rebuilt_;
    int rebuild_cur_zone_ = -1;
    ProgressCb rebuild_progress_;
    StatusCb rebuild_done_;
    uint64_t rebuild_wal_copied_ = 0;
    LifecycleConfig lifecycle_;
};

} // namespace raizn
