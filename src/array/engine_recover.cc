/**
 * @file
 * ZonedEngine mount-time recovery (journal replay, write-pointer
 * reconciliation), device rebuild, the spare-promotion lifecycle, and
 * the scrubber. The data path lives in engine.cc.
 */
#include "array/engine.h"

#include <algorithm>
#include <cstring>

#include "array/gf256.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "raizn/stripe_buffer.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

uint64_t
bit(uint32_t dev)
{
    return 1ull << dev;
}

} // namespace

// ---------------------------------------------------------------------
// Mount
// ---------------------------------------------------------------------

Status
ZonedEngine::run_mount()
{
    Status s = replay_wal();
    if (!s.is_ok())
        return s;
    for (uint32_t z = 0; z < nzones_; ++z) {
        s = recover_zone(z);
        if (!s.is_ok())
            return s;
    }
    return Status::ok();
}

Status
ZonedEngine::replay_wal()
{
    const uint32_t n = num_devices();
    struct Slot {
        bool valid = false;
        WalRecord rec;
    };
    std::vector<uint64_t> heights(n, 0);
    uint64_t max_h = 0;
    for (uint32_t d = 0; d < n; ++d) {
        if (failed_devs_[d])
            continue;
        Result<ZoneInfo> zi = devs_[d]->zone_info(0);
        if (!zi.is_ok())
            return zi.status();
        heights[d] = std::min<uint64_t>(zi.value().written(), wal_slots_);
        max_h = std::max(max_h, heights[d]);
    }
    std::vector<Slot> merged(max_h);
    for (uint32_t d = 0; d < n; ++d) {
        if (failed_devs_[d] || heights[d] == 0)
            continue;
        IoRequest rd = IoRequest::read(0, static_cast<uint32_t>(heights[d]));
        rd.cause = obs::Cause::kWalMd;
        IoResult r = submit_sync(*loop_, *devs_[d], std::move(rd));
        if (!r.status.is_ok())
            return r.status;
        for (uint64_t s = 0; s < heights[d]; ++s) {
            WalRecord rec;
            // A torn append fails the CRC; every durable copy of a slot
            // carries the same record, so first-valid wins.
            if (!decode_wal(r.data.data() + s * kSectorSize, &rec))
                continue;
            if (!merged[s].valid) {
                merged[s].valid = true;
                merged[s].rec = rec;
            }
        }
    }
    wal_next_ = max_h;
    // Journals can diverge in height after a crash (appends reached
    // some members only). Pad the short ones so the next append lands
    // at one slot everywhere.
    for (uint32_t d = 0; d < n; ++d) {
        if (failed_devs_[d])
            continue;
        for (uint64_t s = heights[d]; s < max_h; ++s) {
            std::vector<uint8_t> sector = merged[s].valid
                ? encode_wal(merged[s].rec)
                : std::vector<uint8_t>(kSectorSize, 0);
            IoRequest wr =
                IoRequest::write(s, std::move(sector), /*fua=*/true);
            wr.cause = obs::Cause::kWalMd;
            IoResult w = submit_sync(*loop_, *devs_[d], std::move(wr));
            if (!w.status.is_ok())
                return w.status;
        }
    }

    struct ZoneWal {
        uint64_t intent_gen = 0;
        uint64_t done_gen = 0;
        uint64_t done_parts = ~0ull;
        bool has_kind = false;
        uint64_t kind_gen = 0;
        uint32_t kind = 0;
        std::vector<std::pair<uint64_t, uint64_t>> joins; // (gen, bits)
    };
    std::vector<ZoneWal> zw(nzones_);
    for (uint64_t s = 0; s < max_h; ++s) {
        if (!merged[s].valid)
            continue;
        const WalRecord &r = merged[s].rec;
        if (r.zone >= nzones_)
            continue;
        ZoneWal &w = zw[r.zone];
        switch (r.type) {
        case WalRecord::kResetIntent:
            w.intent_gen = std::max(w.intent_gen, r.gen);
            break;
        case WalRecord::kResetDone:
            if (r.gen >= w.done_gen) {
                w.done_gen = r.gen;
                w.done_parts = r.participants;
            }
            break;
        case WalRecord::kKind:
            if (!w.has_kind || r.gen >= w.kind_gen) {
                w.has_kind = true;
                w.kind_gen = r.gen;
                w.kind = r.kind;
            }
            break;
        case WalRecord::kJoin:
            w.joins.emplace_back(r.gen, r.participants);
            break;
        default:
            break;
        }
    }

    for (uint32_t z = 0; z < nzones_; ++z) {
        ZoneWal &w = zw[z];
        EZone &ez = zones_[z];
        uint64_t gen = std::max(w.intent_gen, w.done_gen);
        uint64_t parts = w.done_gen > 0 ? w.done_parts : ~0ull;
        if (w.intent_gen > w.done_gen) {
            // Interrupted reset: roll it forward. Physical resets are
            // idempotent, and the completion record makes the new
            // participant set durable.
            const uint64_t lba = static_cast<uint64_t>(z + 1) *
                devs_[0]->geometry().zone_size;
            uint64_t np = 0;
            for (uint32_t d = 0; d < n; ++d) {
                if (failed_devs_[d])
                    continue;
                IoRequest rst = IoRequest::zone_reset(lba);
                rst.cause = obs::Cause::kWalMd;
                IoResult r =
                    submit_sync(*loop_, *devs_[d], std::move(rst));
                if (!r.status.is_ok())
                    return r.status;
                np |= bit(d);
            }
            if (wal_next_ >= wal_slots_)
                return Status(StatusCode::kNoSpace,
                              "reset journal full during replay");
            WalRecord drec;
            drec.type = WalRecord::kResetDone;
            drec.zone = z;
            drec.gen = w.intent_gen;
            drec.participants = np;
            std::vector<uint8_t> sector = encode_wal(drec);
            const uint64_t slot = wal_next_++;
            for (uint32_t d = 0; d < n; ++d) {
                if (failed_devs_[d])
                    continue;
                IoRequest wr =
                    IoRequest::write(slot, sector, /*fua=*/true);
                wr.cause = obs::Cause::kWalMd;
                IoResult r =
                    submit_sync(*loop_, *devs_[d], std::move(wr));
                if (!r.status.is_ok())
                    return r.status;
            }
            ++stats_.wal_appends;
            parts = np;
            gen = w.intent_gen;
        }
        for (const auto &j : w.joins)
            if (j.first == gen)
                parts |= j.second;
        ez.gen = gen;
        ez.participants = parts;
        if (cfg_.mode == RaidMode::kAuto) {
            if (w.has_kind && w.kind_gen == gen) {
                ez.kind = static_cast<ZoneKind>(w.kind);
                ez.kind_decided = true;
            } else {
                // No data of this generation can be on media: the kind
                // record is FUA-journaled before the first chunk.
                ez.kind = ZoneKind::kParity;
                ez.kind_decided = false;
            }
        }
    }
    return Status::ok();
}

Status
ZonedEngine::recover_zone(uint32_t zone)
{
    EZone &z = zones_[zone];
    const uint32_t n = num_devices();
    const uint32_t su = cfg_.su_sectors;
    const uint32_t units = units_of(z.kind);
    std::vector<uint64_t> rows(n, 0);
    std::vector<bool> full(n, false);
    for (uint32_t d = 0; d < n; ++d) {
        if (failed_devs_[d])
            continue;
        Result<ZoneInfo> zi = devs_[d]->zone_info(phys_zone(zone));
        if (!zi.is_ok())
            return zi.status();
        full[d] = zi.value().full();
        rows[d] = full[d] ? phys_cap_ : zi.value().written();
    }
    auto trusted = [&](uint32_t d) {
        return !failed_devs_[d] && (z.participants & bit(d)) != 0;
    };

    // "Finished" must hold under degraded finishes, where only the live
    // members reached kFull: a zone is finished when enough trusted
    // full copies exist to serve its whole capacity.
    bool finished = false;
    switch (z.kind) {
    case ZoneKind::kMirror:
        for (uint32_t d = 0; d < n; ++d)
            if (trusted(d) && full[d])
                finished = true;
        break;
    case ZoneKind::kMirrorPairs: {
        finished = true;
        for (uint32_t u = 0; u < n / 2 && finished; ++u) {
            bool pair_ok = false;
            for (uint32_t d : {2 * u, 2 * u + 1})
                if (trusted(d) && full[d])
                    pair_ok = true;
            finished = pair_ok;
        }
        break;
    }
    default:
        finished = true;
        for (uint32_t d = 0; d < n; ++d)
            if (!trusted(d) || !full[d])
                finished = false;
        break;
    }

    uint64_t fill = 0;
    if (finished) {
        fill = zone_cap_;
    } else if (z.kind == ZoneKind::kMirror) {
        for (uint32_t d = 0; d < n; ++d)
            if (trusted(d))
                fill = std::max(fill,
                                std::min<uint64_t>(rows[d], zone_cap_));
    } else {
        // Longest logically-contiguous prefix with every chunk row
        // present on a trusted member.
        bool stop = false;
        for (uint64_t stripe = 0; !stop && fill < zone_cap_; ++stripe) {
            for (uint32_t u = 0; u < units && !stop; ++u) {
                uint64_t have = 0;
                for (uint32_t d : unit_devs(zone, stripe, u)) {
                    if (!trusted(d))
                        continue;
                    uint64_t avail = rows[d] > stripe * su
                        ? std::min<uint64_t>(rows[d] - stripe * su, su)
                        : 0;
                    have = std::max(have, avail);
                }
                fill += have;
                if (have < su)
                    stop = true;
            }
        }
        fill = std::min(fill, zone_cap_);
    }

    z.fill = fill;
    z.finished = finished;
    // Non-empty recovered zones are read-only until reset: the engine
    // cannot resume a ZNS append stream whose members may disagree
    // about the tail (and tail-stripe parity died with the crash).
    z.frozen = fill > 0;
    z.rec_fill.assign(n, 0);
    for (uint32_t d = 0; d < n; ++d) {
        if (!trusted(d))
            continue;
        z.rec_fill[d] = z.kind == ZoneKind::kMirror
            ? std::min<uint64_t>(rows[d], zone_cap_)
            : rows[d];
    }
    return Status::ok();
}

// ---------------------------------------------------------------------
// Rebuild
// ---------------------------------------------------------------------

void
ZonedEngine::rebuild_device(uint32_t dev, ProgressCb progress,
                            StatusCb done)
{
    auto reject = [this, &done](Status s) {
        loop_->schedule_after(1,
                              [done = std::move(done), s = std::move(s)] {
                                  if (done)
                                      done(s);
                              });
    };
    if (dev >= num_devices()) {
        reject(Status(StatusCode::kInvalidArgument,
                      "device index out of range"));
        return;
    }
    if (rebuilding_) {
        reject(Status(StatusCode::kBusy, "rebuild already in progress"));
        return;
    }
    rebuilding_ = true;
    rebuild_dev_ = static_cast<int>(dev);
    rebuild_progress_ = std::move(progress);
    rebuild_done_ = std::move(done);
    rebuild_wal_copied_ = 0;
    zone_rebuilt_.assign(nzones_, false);
    if (failed_devs_[dev]) {
        failed_devs_[dev] = false;
        --nfailed_;
    }
    // Whatever the target held is untrusted until copied back, zone by
    // zone; participants gate both reads and new writes.
    for (uint32_t z = 0; z < nzones_; ++z)
        zones_[z].participants &= ~bit(dev);
    LOG_INFO("%s: rebuilding member %u", metric_prefix().c_str(), dev);
    IoRequest rst = IoRequest::zone_reset(0);
    rst.trace_stage = "eng.rebuild";
    rst.cause = obs::Cause::kRebuild;
    chain_submit(dev, 0, std::move(rst),
                 [this, alive = alive_](IoResult r) {
                     if (!*alive)
                         return;
                     if (!r.status.is_ok()) {
                         finish_rebuild(r.status);
                         return;
                     }
                     copy_wal_to_target([this, alive](Status s) {
                         if (!*alive)
                             return;
                         if (!s.is_ok()) {
                             finish_rebuild(s);
                             return;
                         }
                         rebuild_zone(0);
                     });
                 });
}

void
ZonedEngine::copy_wal_to_target(StatusCb done)
{
    const uint32_t t = static_cast<uint32_t>(rebuild_dev_);
    int src = -1;
    for (uint32_t d = 0; d < num_devices(); ++d)
        if (d != t && !failed_devs_[d]) {
            src = static_cast<int>(d);
            break;
        }
    auto shared_done = std::make_shared<StatusCb>(std::move(done));
    if (src < 0) {
        loop_->schedule_after(1, [shared_done] {
            (*shared_done)(
                Status(StatusCode::kOffline, "no live journal source"));
        });
        return;
    }
    auto step = std::make_shared<std::function<void()>>();
    // `step` closes over itself; break the cycle off-stack once done.
    auto conclude = [this, shared_done, step](Status s) {
        loop_->schedule_after(1, [shared_done, step, s = std::move(s)] {
            *step = nullptr;
            (*shared_done)(s);
        });
    };
    *step = [this, t, src, step, conclude, alive = alive_] {
        if (rebuild_wal_copied_ >= wal_next_) {
            conclude(Status::ok());
            return;
        }
        const uint64_t slot = rebuild_wal_copied_;
        auto write_slot = [this, t, step, conclude, slot,
                           alive](std::vector<uint8_t> payload) {
            IoRequest wr = store_data_
                ? IoRequest::write(slot, std::move(payload), /*fua=*/true)
                : IoRequest::write_len(slot, 1, /*fua=*/true);
            wr.trace_stage = "eng.rebuild";
            wr.cause = obs::Cause::kRebuild;
            chain_submit(t, 0, std::move(wr),
                         [this, step, conclude, alive](IoResult w) {
                             if (!*alive)
                                 return;
                             if (!w.status.is_ok()) {
                                 conclude(w.status);
                                 return;
                             }
                             ++rebuild_wal_copied_;
                             (*step)();
                         });
        };
        if (!store_data_) {
            write_slot({});
            return;
        }
        IoRequest rd = IoRequest::read(slot, 1);
        rd.trace_stage = "eng.rebuild";
        rd.cause = obs::Cause::kRebuild;
        chain_submit(static_cast<uint32_t>(src), 0, std::move(rd),
                     [write_slot, conclude, alive](IoResult r) {
                         if (!*alive)
                             return;
                         if (!r.status.is_ok()) {
                             conclude(r.status);
                             return;
                         }
                         write_slot(std::move(r.data));
                     });
    };
    (*step)();
}

void
ZonedEngine::rebuild_zone(uint32_t zone)
{
    if (zone >= nzones_) {
        // Catch up journal records appended while zones were copying,
        // then seal the member with a flush.
        copy_wal_to_target([this, alive = alive_](Status s) {
            if (!*alive)
                return;
            if (!s.is_ok()) {
                finish_rebuild(s);
                return;
            }
            IoRequest fl = IoRequest::flush();
            fl.trace_stage = "eng.rebuild";
            fl.cause = obs::Cause::kRebuild;
            chain_submit(static_cast<uint32_t>(rebuild_dev_), 0,
                         std::move(fl), [this, alive](IoResult r) {
                             if (!*alive)
                                 return;
                             finish_rebuild(r.status);
                         });
        });
        return;
    }
    // Run as a zone-queue step: every already-submitted write has
    // issued its chunks (so the chains order them before our reads),
    // and later writes stay parked until the copy commits. The fill
    // snapshot below is therefore stable for the whole pass.
    zone_enqueue(zone, [this, zone](std::function<void()> wq_done) {
        rebuild_cur_zone_ = static_cast<int>(zone);
        EZone &z = zones_[zone];
        const uint32_t t = static_cast<uint32_t>(rebuild_dev_);
        const uint64_t limit = z.finished ? zone_cap_ : z.fill;
        StatusCb zone_done = [this, zone, t,
                              wq_done = std::move(wq_done)](Status s) {
            rebuild_cur_zone_ = -1;
            if (!s.is_ok()) {
                wq_done();
                finish_rebuild(s);
                return;
            }
            EZone &ez = zones_[zone];
            zone_rebuilt_[zone] = true;
            ez.participants |= bit(t);
            if (!ez.rec_fill.empty()) {
                Result<ZoneInfo> zi = devs_[t]->zone_info(phys_zone(zone));
                if (zi.is_ok()) {
                    uint64_t rows = zi.value().full()
                        ? phys_cap_
                        : zi.value().written();
                    ez.rec_fill[t] = ez.kind == ZoneKind::kMirror
                        ? std::min<uint64_t>(rows, zone_cap_)
                        : rows;
                }
            }
            ++stats_.zones_rebuilt;
            WalRecord j;
            j.type = WalRecord::kJoin;
            j.zone = zone;
            j.gen = ez.gen;
            j.participants = bit(t);
            append_wal(j, [this, zone, wq_done,
                           alive = alive_](Status js) {
                if (!*alive)
                    return;
                if (!js.is_ok())
                    LOG_WARN("rebuild: join record for zone %u failed: %s",
                             zone, js.message().c_str());
                wq_done();
                if (rebuild_progress_)
                    rebuild_progress_(zone + 1, nzones_);
                rebuild_zone(zone + 1);
            });
        };
        // Wipe the target's copy of the zone; its write pointer must
        // restart from zero for the sequential copy.
        IoRequest rst = IoRequest::zone_reset(
            static_cast<uint64_t>(zone + 1) *
            devs_[0]->geometry().zone_size);
        rst.trace_stage = "eng.rebuild";
        rst.cause = obs::Cause::kRebuild;
        chain_submit(t, phys_zone(zone), std::move(rst),
                     [this, zone, t, limit, zone_done,
                      alive = alive_](IoResult r) {
            if (!*alive)
                return;
            if (!r.status.is_ok()) {
                zone_done(r.status);
                return;
            }
            EZone &ez = zones_[zone];
            switch (ez.kind) {
            case ZoneKind::kStripe0:
                if (limit > static_cast<uint64_t>(t) * cfg_.su_sectors) {
                    zone_done(Status(
                        StatusCode::kIoError,
                        "raid0 data on a lost member is unrecoverable"));
                    return;
                }
                loop_->schedule_after(
                    1, [zone_done] { zone_done(Status::ok()); });
                return;
            case ZoneKind::kMirror: {
                if (limit == 0) {
                    loop_->schedule_after(
                        1, [zone_done] { zone_done(Status::ok()); });
                    return;
                }
                std::vector<uint32_t> all(num_devices());
                for (uint32_t d = 0; d < num_devices(); ++d)
                    all[d] = d;
                uint32_t src = UINT32_MAX;
                for (uint32_t d : mirror_sources(zone, limit, all))
                    if (d != t && dev_live(d)) {
                        src = d;
                        break;
                    }
                if (src == UINT32_MAX) {
                    zone_done(Status(StatusCode::kIoError,
                                     "no intact mirror source"));
                    return;
                }
                rebuild_mirror_rows(zone, 0, limit, src, zone_done);
                return;
            }
            default:
                rebuild_stripe_from(zone, 0, limit, zone_done);
                return;
            }
        });
    });
}

void
ZonedEngine::rebuild_mirror_rows(uint32_t zone, uint64_t row,
                                 uint64_t limit, uint32_t src,
                                 StatusCb done)
{
    const uint32_t t = static_cast<uint32_t>(rebuild_dev_);
    if (row >= limit) {
        if (!zones_[zone].finished) {
            loop_->schedule_after(1, [done = std::move(done)] {
                done(Status::ok());
            });
            return;
        }
        IoRequest req = IoRequest::zone_finish(
            static_cast<uint64_t>(zone + 1) *
            devs_[0]->geometry().zone_size);
        req.trace_stage = "eng.rebuild";
        req.cause = obs::Cause::kRebuild;
        chain_submit(t, phys_zone(zone), std::move(req),
                     [done = std::move(done)](IoResult r) {
                         done(r.status);
                     });
        return;
    }
    const uint32_t n =
        static_cast<uint32_t>(std::min<uint64_t>(limit - row, 32));
    IoRequest rd = IoRequest::read(dev_row_lba(zone, row), n);
    rd.trace_stage = "eng.rebuild";
    rd.cause = obs::Cause::kRebuild;
    chain_submit(
        src, phys_zone(zone), std::move(rd),
        [this, zone, row, n, limit, src, done = std::move(done),
         alive = alive_](IoResult r) {
            if (!*alive)
                return;
            if (!r.status.is_ok()) {
                done(r.status);
                return;
            }
            const uint32_t tgt = static_cast<uint32_t>(rebuild_dev_);
            IoRequest wr = store_data_
                ? IoRequest::write(dev_row_lba(zone, row),
                                   std::move(r.data))
                : IoRequest::write_len(dev_row_lba(zone, row), n);
            wr.trace_stage = "eng.rebuild";
            wr.cause = obs::Cause::kRebuild;
            chain_submit(tgt, phys_zone(zone), std::move(wr),
                         [this, zone, row, n, limit, src, done, alive](
                             IoResult w) {
                             if (!*alive)
                                 return;
                             if (!w.status.is_ok()) {
                                 done(w.status);
                                 return;
                             }
                             rebuild_mirror_rows(zone, row + n, limit,
                                                 src, done);
                         });
        });
}

void
ZonedEngine::rebuild_stripe_from(uint32_t zone, uint64_t stripe,
                                 uint64_t limit, StatusCb done)
{
    EZone &z = zones_[zone];
    const uint32_t t = static_cast<uint32_t>(rebuild_dev_);
    const uint32_t su = cfg_.su_sectors;
    const uint32_t units = units_of(z.kind);
    const uint64_t stripe_sect = static_cast<uint64_t>(su) * units;
    const uint64_t base = stripe * stripe_sect;
    const uint64_t row0 = stripe * su;

    if (base >= limit) {
        if (!z.finished) {
            loop_->schedule_after(1, [done = std::move(done)] {
                done(Status::ok());
            });
            return;
        }
        IoRequest req = IoRequest::zone_finish(
            static_cast<uint64_t>(zone + 1) *
            devs_[0]->geometry().zone_size);
        req.trace_stage = "eng.rebuild";
        req.cause = obs::Cause::kRebuild;
        chain_submit(t, phys_zone(zone), std::move(req),
                     [done = std::move(done)](IoResult r) {
                         done(r.status);
                     });
        return;
    }

    StatusCb next = [this, zone, stripe, limit, done](Status s) {
        if (!s.is_ok()) {
            done(s);
            return;
        }
        rebuild_stripe_from(zone, stripe + 1, limit, done);
    };
    auto skip = [this, next] {
        loop_->schedule_after(1, [next] { next(Status::ok()); });
    };
    auto write_target = [this, zone, t, next](uint64_t row,
                                              std::vector<uint8_t> data,
                                              uint32_t nsect) {
        IoRequest wr = data.empty()
            ? IoRequest::write_len(dev_row_lba(zone, row), nsect)
            : IoRequest::write(dev_row_lba(zone, row), std::move(data));
        wr.trace_stage = "eng.rebuild";
        wr.cause = obs::Cause::kRebuild;
        chain_submit(t, phys_zone(zone), std::move(wr),
                     [next](IoResult r) { next(r.status); });
    };

    const bool complete = base + stripe_sect <= limit;
    const int pd = parity_dev(zone, stripe);
    const int qd = q_dev(zone, stripe);
    const bool t_is_q = qd >= 0 && static_cast<uint32_t>(qd) == t;

    if ((pd >= 0 && static_cast<uint32_t>(pd) == t) || t_is_q) {
        // Tail-stripe parity is in-memory only; nothing to restore.
        if (!complete) {
            skip();
            return;
        }
        if (!store_data_) {
            write_target(row0, {}, su);
            return;
        }
        std::vector<uint32_t> src(units, UINT32_MAX);
        for (uint32_t u = 0; u < units; ++u) {
            for (uint32_t d :
                 mirror_sources(zone, row0 + su, unit_devs(zone, stripe, u)))
                if (d != t && dev_live(d)) {
                    src[u] = d;
                    break;
                }
            if (src[u] == UINT32_MAX) {
                loop_->schedule_after(1, [next] {
                    next(Status(StatusCode::kIoError,
                                "rebuild: stripe data unavailable"));
                });
                return;
            }
        }
        auto bufs = std::make_shared<
            std::map<uint32_t, std::vector<uint8_t>>>();
        auto pending = std::make_shared<uint32_t>(0);
        auto st = std::make_shared<Status>();
        auto fin = [this, su, t_is_q, row0, bufs, st, next,
                    write_target] {
            if (!st->is_ok()) {
                next(*st);
                return;
            }
            const size_t bytes = static_cast<size_t>(su) * kSectorSize;
            std::vector<uint8_t> out(bytes, 0);
            for (auto &kv : *bufs) {
                if (t_is_q)
                    gf256::accumulate(out.data(), kv.second.data(), bytes,
                                      kv.first);
                else
                    xor_bytes(out.data(), kv.second.data(), bytes);
            }
            write_target(row0, std::move(out), su);
        };
        for (uint32_t u = 0; u < units; ++u) {
            ++*pending;
            IoRequest rd = IoRequest::read(dev_row_lba(zone, row0), su);
            rd.trace_stage = "eng.rebuild";
            rd.cause = obs::Cause::kRebuild;
            chain_submit(src[u], phys_zone(zone), std::move(rd),
                         [u, bufs, pending, st, fin](IoResult r) {
                             if (!r.status.is_ok()) {
                                 if (st->is_ok())
                                     *st = r.status;
                             } else {
                                 (*bufs)[u] = std::move(r.data);
                             }
                             if (--*pending == 0)
                                 fin();
                         });
        }
        return;
    }

    // Target holds a data chunk (or one copy of a mirror pair).
    uint32_t u_t = UINT32_MAX;
    if (z.kind == ZoneKind::kMirrorPairs) {
        u_t = t / 2;
    } else {
        for (uint32_t u = 0; u < units; ++u)
            if (chunk_dev(zone, stripe, u) == t) {
                u_t = u;
                break;
            }
    }
    if (u_t == UINT32_MAX) {
        skip();
        return;
    }
    const uint64_t chunk_base =
        base + static_cast<uint64_t>(u_t) * su;
    const uint64_t rows = limit > chunk_base
        ? std::min<uint64_t>(limit - chunk_base, su)
        : 0;
    if (rows == 0) {
        skip();
        return;
    }
    const uint32_t nrows = static_cast<uint32_t>(rows);
    if (!store_data_) {
        write_target(row0, {}, nrows);
        return;
    }

    if (z.kind == ZoneKind::kMirrorPairs) {
        const uint32_t partner = t ^ 1u;
        const bool ok = !dev_down_for_zone(partner, zone) &&
            dev_live(partner) &&
            (z.rec_fill.empty() || z.rec_fill[partner] >= row0 + rows);
        if (!ok) {
            loop_->schedule_after(1, [next] {
                next(Status(StatusCode::kIoError, "mirror pair lost"));
            });
            return;
        }
        IoRequest rd = IoRequest::read(dev_row_lba(zone, row0), nrows);
        rd.trace_stage = "eng.rebuild";
        rd.cause = obs::Cause::kRebuild;
        chain_submit(partner, phys_zone(zone), std::move(rd),
                     [row0, nrows, next, write_target](IoResult r) {
                         if (!r.status.is_ok()) {
                             next(r.status);
                             return;
                         }
                         write_target(row0, std::move(r.data), nrows);
                     });
        return;
    }

    if (!complete) {
        // Open (tail) stripe: parity is not on media. Serve the chunk
        // from the in-memory tail buffer; for frozen zones that buffer
        // died with the crash, so the sectors are gone — leave the
        // target short, mirroring the degraded-read contract.
        auto it = z.tails.find(stripe);
        if (!z.frozen && it != z.tails.end() &&
            it->second.filled >=
                static_cast<uint64_t>(u_t) * su + rows &&
            !it->second.data.empty()) {
            const size_t off =
                static_cast<size_t>(u_t) * su * kSectorSize;
            std::vector<uint8_t> chunk(
                it->second.data.begin() + off,
                it->second.data.begin() + off + rows * kSectorSize);
            write_target(row0, std::move(chunk), nrows);
            return;
        }
        if (z.frozen) {
            skip();
            return;
        }
        loop_->schedule_after(1, [next] {
            next(Status(StatusCode::kIoError,
                        "rebuild: open-stripe data unavailable"));
        });
        return;
    }

    reconstruct_chunk(
        zone, stripe, u_t, 0, nrows,
        [row0, nrows, next, write_target](Status s,
                                          std::vector<uint8_t> data) {
            if (!s.is_ok()) {
                next(s);
                return;
            }
            write_target(row0, std::move(data), nrows);
        });
}

void
ZonedEngine::finish_rebuild(Status s)
{
    rebuilding_ = false;
    rebuild_cur_zone_ = -1;
    const int dev = rebuild_dev_;
    rebuild_dev_ = -1;
    StatusCb done = std::move(rebuild_done_);
    rebuild_done_ = nullptr;
    rebuild_progress_ = nullptr;
    if (s.is_ok()) {
        LOG_INFO("%s: member %d rebuilt (%llu zones)",
                 metric_prefix().c_str(), dev,
                 static_cast<unsigned long long>(stats_.zones_rebuilt));
    } else {
        LOG_WARN("%s: rebuild of member %d failed: %s",
                 metric_prefix().c_str(), dev, s.message().c_str());
        // The target never became trustworthy; keep it out of the
        // array (per-zone participants already exclude it).
        if (dev >= 0 && !failed_devs_[dev]) {
            failed_devs_[dev] = true;
            ++nfailed_;
        }
    }
    for (uint32_t z = 0; z < nzones_; ++z)
        zone_advance(z);
    if (done)
        done(s);
}

void
ZonedEngine::maybe_start_auto_rebuild(uint32_t dev)
{
    if (!lifecycle_.auto_rebuild || rebuilding_ || !has_spare())
        return;
    ++stats_.auto_failovers;
    LOG_INFO("%s: promoting hot spare for failed member %u",
             metric_prefix().c_str(), dev);
    loop_->schedule_after(1, [this, dev, alive = alive_] {
        if (!*alive)
            return;
        if (!failed_devs_[dev] || rebuilding_ || !has_spare())
            return;
        promote_spare_base(dev);
        rebuild_device(dev, nullptr, [this, dev](Status s) {
            if (lifecycle_.on_rebuild_done)
                lifecycle_.on_rebuild_done(dev, s);
        });
    });
}

// ---------------------------------------------------------------------
// Scrub
// ---------------------------------------------------------------------

Status
ZonedEngine::scrub_all(ScrubReport *report)
{
    if (!store_data_)
        return Status(StatusCode::kNotSupported,
                      "scrub requires data-storing members");
    ScrubReport local;
    for (uint32_t z = 0; z < nzones_; ++z) {
        Status s = scrub_zone(z, &local);
        if (!s.is_ok())
            return s;
    }
    if (report != nullptr)
        *report = local;
    return Status::ok();
}

Status
ZonedEngine::scrub_zone(uint32_t zone, ScrubReport *rep)
{
    EZone &z = zones_[zone];
    const uint32_t su = cfg_.su_sectors;
    const uint32_t units = units_of(z.kind);
    const uint64_t stripe_sect = static_cast<uint64_t>(su) * units;
    const uint64_t limit = z.finished ? zone_cap_ : z.fill;
    if (limit == 0)
        return Status::ok();
    auto avail = [&](uint32_t d, uint64_t row_end) {
        return !dev_down_for_zone(d, zone) && dev_live(d) &&
            (z.rec_fill.empty() || z.rec_fill[d] >= row_end);
    };
    auto read_rows = [&](uint32_t d, uint64_t row, uint32_t n,
                         std::vector<uint8_t> *out) {
        IoRequest rd = IoRequest::read(dev_row_lba(zone, row), n);
        rd.cause = obs::Cause::kScrub;
        IoResult r = submit_sync(*loop_, *devs_[d], std::move(rd));
        if (r.status.is_ok())
            *out = std::move(r.data);
        return r.status;
    };

    switch (z.kind) {
    case ZoneKind::kMirror: {
        for (uint64_t off = 0; off < limit; off += su) {
            const uint32_t nn =
                static_cast<uint32_t>(std::min<uint64_t>(su, limit - off));
            std::vector<std::vector<uint8_t>> copies;
            for (uint32_t d = 0; d < num_devices(); ++d) {
                if (!avail(d, off + nn))
                    continue;
                std::vector<uint8_t> buf;
                if (!read_rows(d, off, nn, &buf).is_ok()) {
                    ++rep->unrecoverable;
                    continue;
                }
                copies.push_back(std::move(buf));
            }
            if (copies.empty()) {
                ++rep->unrecoverable;
            } else {
                for (size_t i = 1; i < copies.size(); ++i)
                    if (copies[i] != copies[0])
                        ++rep->parity_mismatches;
                if (!crc_range_ok(zone, off, copies[0].data(), nn))
                    ++rep->crc_mismatches;
            }
            ++rep->stripes_scanned;
            ++stats_.scrubbed_stripes;
        }
        return Status::ok();
    }
    case ZoneKind::kMirrorPairs: {
        const uint64_t nstripes =
            (limit + stripe_sect - 1) / stripe_sect;
        for (uint64_t s = 0; s < nstripes; ++s) {
            for (uint32_t u = 0; u < units; ++u) {
                const uint64_t cb = s * stripe_sect +
                    static_cast<uint64_t>(u) * su;
                if (cb >= limit)
                    break;
                const uint32_t nn = static_cast<uint32_t>(
                    std::min<uint64_t>(su, limit - cb));
                const uint64_t row = s * su;
                std::vector<std::vector<uint8_t>> copies;
                for (uint32_t d : {2 * u, 2 * u + 1}) {
                    if (!avail(d, row + nn))
                        continue;
                    std::vector<uint8_t> buf;
                    if (!read_rows(d, row, nn, &buf).is_ok()) {
                        ++rep->unrecoverable;
                        continue;
                    }
                    copies.push_back(std::move(buf));
                }
                if (copies.empty()) {
                    ++rep->unrecoverable;
                    continue;
                }
                if (copies.size() == 2 && copies[0] != copies[1])
                    ++rep->parity_mismatches;
                if (!crc_range_ok(zone, cb, copies[0].data(), nn))
                    ++rep->crc_mismatches;
            }
            ++rep->stripes_scanned;
            ++stats_.scrubbed_stripes;
        }
        return Status::ok();
    }
    case ZoneKind::kStripe0: {
        const uint64_t nstripes =
            (limit + stripe_sect - 1) / stripe_sect;
        for (uint64_t s = 0; s < nstripes; ++s) {
            for (uint32_t u = 0; u < units; ++u) {
                const uint64_t cb = s * stripe_sect +
                    static_cast<uint64_t>(u) * su;
                if (cb >= limit)
                    break;
                const uint32_t nn = static_cast<uint32_t>(
                    std::min<uint64_t>(su, limit - cb));
                const uint32_t d = chunk_dev(zone, s, u);
                if (!avail(d, s * su + nn)) {
                    ++rep->unrecoverable;
                    continue;
                }
                std::vector<uint8_t> buf;
                if (!read_rows(d, s * su, nn, &buf).is_ok()) {
                    ++rep->unrecoverable;
                    continue;
                }
                if (!crc_range_ok(zone, cb, buf.data(), nn))
                    ++rep->crc_mismatches;
            }
            ++rep->stripes_scanned;
            ++stats_.scrubbed_stripes;
        }
        return Status::ok();
    }
    default: {
        // Parity kinds: verify settled complete stripes (the open tail
        // stripe's parity is still in memory).
        const uint64_t full_stripes = limit / stripe_sect;
        const size_t bytes = static_cast<size_t>(su) * kSectorSize;
        for (uint64_t s = 0; s < full_stripes; ++s) {
            if (z.tails.count(s) != 0)
                continue;
            const uint64_t row = s * su;
            bool all_avail = true;
            for (uint32_t u = 0; u < units && all_avail; ++u)
                if (!avail(chunk_dev(zone, s, u), row + su))
                    all_avail = false;
            const int pd = parity_dev(zone, s);
            const int qd = q_dev(zone, s);
            if (pd >= 0 &&
                !avail(static_cast<uint32_t>(pd), row + su))
                all_avail = false;
            if (qd >= 0 &&
                !avail(static_cast<uint32_t>(qd), row + su))
                all_avail = false;
            if (!all_avail)
                continue;
            std::vector<uint8_t> p_calc(bytes, 0);
            std::vector<uint8_t> q_calc(bytes, 0);
            bool io_err = false;
            for (uint32_t u = 0; u < units; ++u) {
                std::vector<uint8_t> buf;
                if (!read_rows(chunk_dev(zone, s, u), row, su, &buf)
                         .is_ok()) {
                    ++rep->unrecoverable;
                    io_err = true;
                    break;
                }
                if (!crc_range_ok(zone,
                                  s * stripe_sect +
                                      static_cast<uint64_t>(u) * su,
                                  buf.data(), su))
                    ++rep->crc_mismatches;
                xor_bytes(p_calc.data(), buf.data(), bytes);
                if (qd >= 0)
                    gf256::accumulate(q_calc.data(), buf.data(), bytes,
                                      u);
            }
            if (io_err)
                continue;
            std::vector<uint8_t> p_disk;
            if (!read_rows(static_cast<uint32_t>(pd), row, su, &p_disk)
                     .is_ok()) {
                ++rep->unrecoverable;
                continue;
            }
            if (p_disk != p_calc)
                ++rep->parity_mismatches;
            if (qd >= 0) {
                std::vector<uint8_t> q_disk;
                if (!read_rows(static_cast<uint32_t>(qd), row, su,
                               &q_disk)
                         .is_ok()) {
                    ++rep->unrecoverable;
                    continue;
                }
                if (q_disk != q_calc)
                    ++rep->parity_mismatches;
            }
            ++rep->stripes_scanned;
            ++stats_.scrubbed_stripes;
        }
        return Status::ok();
    }
    }
}

} // namespace raizn
