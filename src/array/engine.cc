/**
 * @file
 * ZonedEngine data path: geometry/placement, the per-(member, zone)
 * submit chains, flush barriers, the replicated journal, and the
 * read/write/reset/finish implementations. Mount/rebuild/scrub live in
 * engine_recover.cc.
 */
#include "array/engine.h"

#include <algorithm>
#include <cstring>

#include "array/gf256.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/prof/prof.h"
#include "obs/trace.h"
#include "raizn/stripe_buffer.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

constexpr uint64_t kWalMagic = 0x5a41574c30303031ull; // "ZAWL0001"
constexpr size_t kWalCrcOff = 36; // header bytes covered by the CRC

uint64_t
bit(uint32_t dev)
{
    return 1ull << dev;
}

uint64_t
chain_key(uint32_t dev, uint32_t phys_zone)
{
    return (static_cast<uint64_t>(dev) << 32) | phys_zone;
}

} // namespace

std::string
EngineStats::dump() const
{
    return obs::render_stats(*this);
}

struct ZonedEngine::WriteCtx {
    uint32_t pending = 0;
    bool issued_all = false;
    Status status;
    WriteFlags flags;
    uint32_t nsectors = 0; ///< logical length (acked-user-byte ledger)
    IoCallback cb;
    Tick t0 = 0;
    uint64_t req_id = 0;      ///< trace request id (0 = untraced)
    uint64_t total_token = 0; ///< open "eng.write" span token
};

struct ZonedEngine::FlushBarrier {
    std::set<uint64_t> waiting;
    IoCallback cb;
};

// ---------------------------------------------------------------------
// Construction / geometry
// ---------------------------------------------------------------------

Status
ZonedEngine::validate(const std::vector<BlockDevice *> &devs,
                      const EngineConfig &cfg)
{
    if (cfg.mode == RaidMode::kRaizn || cfg.mode == RaidMode::kMdraid)
        return Status(StatusCode::kInvalidArgument,
                      "use the dedicated implementation for this mode");
    if (devs.size() < 2 || devs.size() > 64)
        return Status(StatusCode::kInvalidArgument,
                      "engine needs 2..64 members");
    const uint32_t n = static_cast<uint32_t>(devs.size());
    uint32_t min_devs = 2;
    switch (cfg.mode) {
    case RaidMode::kRaid5:
    case RaidMode::kAuto:
        min_devs = 3;
        break;
    case RaidMode::kRaid6:
    case RaidMode::kRaid10:
        min_devs = 4;
        break;
    default:
        break;
    }
    if (n < min_devs)
        return Status(StatusCode::kInvalidArgument,
                      strprintf("%s needs at least %u members",
                                std::string(to_string(cfg.mode)).c_str(),
                                min_devs));
    if (cfg.mode == RaidMode::kRaid10 && n % 2 != 0)
        return Status(StatusCode::kInvalidArgument,
                      "raid10 needs an even member count");
    if (cfg.su_sectors == 0)
        return Status(StatusCode::kInvalidArgument, "su_sectors == 0");
    const DeviceGeometry &g0 = devs[0]->geometry();
    for (BlockDevice *d : devs) {
        const DeviceGeometry &g = d->geometry();
        if (!g.zoned)
            return Status(StatusCode::kInvalidArgument,
                          "engine members must be zoned devices");
        if (g.zone_size != g0.zone_size ||
            g.zone_capacity != g0.zone_capacity || g.nzones != g0.nzones)
            return Status(StatusCode::kInvalidArgument,
                          "engine members must share one geometry");
        if (d->data_mode() != devs[0]->data_mode())
            return Status(StatusCode::kInvalidArgument,
                          "engine members must share one data mode");
    }
    if (g0.nzones < 2)
        return Status(StatusCode::kInvalidArgument,
                      "need at least 2 zones (one is the journal)");
    if (g0.zone_capacity < cfg.su_sectors)
        return Status(StatusCode::kInvalidArgument,
                      "zone capacity below one stripe unit");
    return Status::ok();
}

ZonedEngine::ZonedEngine(EventLoop *loop, std::vector<BlockDevice *> devs,
                         const EngineConfig &cfg)
    : ZonedArray(loop, std::move(devs),
                 StatCells{&stats_.io_retries, &stats_.io_timeouts,
                           &stats_.dev_errors, &stats_.spares_promoted}),
      cfg_(cfg)
{
    const DeviceGeometry &g = devs_[0]->geometry();
    const uint32_t n = num_devices();
    const uint64_t su = cfg_.su_sectors;
    const uint64_t z = g.zone_capacity;
    phys_cap_ = z;
    nzones_ = g.nzones - 1;
    wal_slots_ = z;
    store_data_ = devs_[0]->data_mode() == DataMode::kStore;
    switch (cfg_.mode) {
    case RaidMode::kRaid0:
        zone_cap_ = (z / su) * su * n;
        break;
    case RaidMode::kRaid1:
        zone_cap_ = z;
        break;
    case RaidMode::kRaid5:
        zone_cap_ = (z / su) * su * (n - 1);
        break;
    case RaidMode::kRaid6:
        zone_cap_ = (z / su) * su * (n - 2);
        break;
    case RaidMode::kRaid10:
        zone_cap_ = (z / su) * su * (n / 2);
        break;
    case RaidMode::kAuto:
        // One capacity must fit both layouts: mirrored zones store C
        // sectors per member (C <= Z), parity zones C / (n-1).
        zone_cap_ = (z / (su * (n - 1))) * su * (n - 1);
        break;
    default:
        zone_cap_ = 0;
        break;
    }
    failed_devs_.assign(n, false);
    zone_rebuilt_.assign(nzones_, false);
    zones_.resize(nzones_);
    for (EZone &ez : zones_) {
        ez.kind = fixed_kind();
        ez.kind_decided = cfg_.mode != RaidMode::kAuto;
    }
}

ZonedEngine::~ZonedEngine() = default;

Result<std::unique_ptr<ZonedEngine>>
ZonedEngine::create(EventLoop *loop, std::vector<BlockDevice *> devs,
                    const EngineConfig &cfg)
{
    Status s = validate(devs, cfg);
    if (!s.is_ok())
        return s;
    std::unique_ptr<ZonedEngine> e(
        new ZonedEngine(loop, std::move(devs), cfg));
    if (e->zone_cap_ == 0)
        return Status(StatusCode::kInvalidArgument,
                      "zone capacity too small for this mode");
    return e;
}

Result<std::unique_ptr<ZonedEngine>>
ZonedEngine::mount(EventLoop *loop, std::vector<BlockDevice *> devs,
                   const EngineConfig &cfg)
{
    Status s = validate(devs, cfg);
    if (!s.is_ok())
        return s;
    if (devs[0]->data_mode() != DataMode::kStore)
        return Status(StatusCode::kNotSupported,
                      "mount requires data-storing members");
    std::unique_ptr<ZonedEngine> e(
        new ZonedEngine(loop, std::move(devs), cfg));
    if (e->zone_cap_ == 0)
        return Status(StatusCode::kInvalidArgument,
                      "zone capacity too small for this mode");
    s = e->run_mount();
    if (!s.is_ok())
        return s;
    return e;
}

ZonedEngine::ZoneKind
ZonedEngine::fixed_kind() const
{
    switch (cfg_.mode) {
    case RaidMode::kRaid0:
        return ZoneKind::kStripe0;
    case RaidMode::kRaid1:
        return ZoneKind::kMirror;
    case RaidMode::kRaid6:
        return ZoneKind::kDualParity;
    case RaidMode::kRaid10:
        return ZoneKind::kMirrorPairs;
    default:
        return ZoneKind::kParity; // raid5; auto placeholder until decided
    }
}

uint32_t
ZonedEngine::units_of(ZoneKind k) const
{
    const uint32_t n = num_devices();
    switch (k) {
    case ZoneKind::kStripe0:
        return n;
    case ZoneKind::kMirror:
        return 1;
    case ZoneKind::kMirrorPairs:
        return n / 2;
    case ZoneKind::kParity:
        return n - 1;
    case ZoneKind::kDualParity:
        return n - 2;
    }
    return 1;
}

uint64_t
ZonedEngine::dev_row_lba(uint32_t zone, uint64_t row) const
{
    return static_cast<uint64_t>(zone + 1) *
               devs_[0]->geometry().zone_size +
           row;
}

bool
ZonedEngine::dev_live(uint32_t dev) const
{
    return !failed_devs_[dev] &&
           !(rebuilding_ && static_cast<int>(dev) == rebuild_dev_);
}

bool
ZonedEngine::dev_down_for_zone(uint32_t dev, uint32_t zone) const
{
    return failed_devs_[dev] ||
           (zones_[zone].participants & bit(dev)) == 0;
}

Result<ZoneInfo>
ZonedEngine::zone_info(uint32_t zone) const
{
    if (zone >= nzones_)
        return Status(StatusCode::kInvalidArgument, "zone out of range");
    const EZone &z = zones_[zone];
    ZoneInfo zi;
    zi.start = static_cast<uint64_t>(zone) * zone_cap_;
    zi.capacity = zone_cap_;
    zi.wp = zi.start + z.fill;
    zi.state = z.finished ? ZoneState::kFull
        : z.fill > 0      ? ZoneState::kImplicitOpen
                          : ZoneState::kEmpty;
    return zi;
}

// ---- Introspection --------------------------------------------------

ZonedEngine::ZoneKind
ZonedEngine::zone_kind(uint32_t zone) const
{
    return zones_[zone].kind;
}

bool
ZonedEngine::zone_kind_decided(uint32_t zone) const
{
    return zones_[zone].kind_decided;
}

uint64_t
ZonedEngine::zone_gen(uint32_t zone) const
{
    return zones_[zone].gen;
}

bool
ZonedEngine::zone_frozen(uint32_t zone) const
{
    return zones_[zone].frozen;
}

bool
ZonedEngine::zone_finished(uint32_t zone) const
{
    return zones_[zone].finished;
}

uint64_t
ZonedEngine::zone_participants(uint32_t zone) const
{
    return zones_[zone].participants;
}

uint32_t
ZonedEngine::data_units(uint32_t zone) const
{
    return units_of(zones_[zone].kind);
}

uint32_t
ZonedEngine::chunk_dev(uint32_t zone, uint64_t stripe, uint32_t u) const
{
    const uint32_t n = num_devices();
    switch (zones_[zone].kind) {
    case ZoneKind::kStripe0:
        return u;
    case ZoneKind::kMirror:
        return 0;
    case ZoneKind::kMirrorPairs:
        return 2 * u;
    case ZoneKind::kParity: {
        uint32_t p = (n - 1 - ((zone + stripe) % n)) % n;
        return (p + 1 + u) % n;
    }
    case ZoneKind::kDualParity: {
        uint32_t p = (n - 1 - ((zone + stripe) % n)) % n;
        uint32_t q = (p + 1) % n;
        return (q + 1 + u) % n;
    }
    }
    return 0;
}

int
ZonedEngine::parity_dev(uint32_t zone, uint64_t stripe) const
{
    const uint32_t n = num_devices();
    ZoneKind k = zones_[zone].kind;
    if (k != ZoneKind::kParity && k != ZoneKind::kDualParity)
        return -1;
    return static_cast<int>((n - 1 - ((zone + stripe) % n)) % n);
}

int
ZonedEngine::q_dev(uint32_t zone, uint64_t stripe) const
{
    if (zones_[zone].kind != ZoneKind::kDualParity)
        return -1;
    const uint32_t n = num_devices();
    uint32_t p = (n - 1 - ((zone + stripe) % n)) % n;
    return static_cast<int>((p + 1) % n);
}

std::vector<uint32_t>
ZonedEngine::unit_devs(uint32_t zone, uint64_t stripe, uint32_t u) const
{
    switch (zones_[zone].kind) {
    case ZoneKind::kMirror: {
        std::vector<uint32_t> all(num_devices());
        for (uint32_t d = 0; d < num_devices(); ++d)
            all[d] = d;
        return all;
    }
    case ZoneKind::kMirrorPairs:
        return {2 * u, 2 * u + 1};
    default:
        return {chunk_dev(zone, stripe, u)};
    }
}

uint64_t
ZonedEngine::degraded_fill(uint32_t zone, uint32_t down) const
{
    const EZone &z = zones_[zone];
    const uint32_t su = cfg_.su_sectors;
    const uint32_t units = units_of(z.kind);
    switch (z.kind) {
    case ZoneKind::kMirror: {
        uint64_t best = 0;
        for (uint32_t d = 0; d < num_devices(); ++d) {
            if (d == down || dev_down_for_zone(d, zone))
                continue;
            uint64_t f = z.rec_fill.empty()
                ? z.fill
                : std::min<uint64_t>(z.rec_fill[d], zone_cap_);
            best = std::max(best, f);
        }
        return std::min(best, z.finished ? zone_cap_ : z.fill);
    }
    case ZoneKind::kMirrorPairs: {
        uint64_t limit = z.finished ? zone_cap_ : z.fill;
        for (uint64_t off = 0; off < limit; ++off) {
            uint64_t stripe = off / (su * static_cast<uint64_t>(units));
            uint32_t u = (off % (su * units)) / su;
            uint64_t row = stripe * su + off % su;
            bool avail = false;
            for (uint32_t d : {2 * u, 2 * u + 1}) {
                if (d == down || dev_down_for_zone(d, zone))
                    continue;
                if (!z.rec_fill.empty() && z.rec_fill[d] <= row)
                    continue;
                avail = true;
            }
            if (!avail)
                return off;
        }
        return limit;
    }
    case ZoneKind::kStripe0: {
        uint64_t limit = z.finished ? zone_cap_ : z.fill;
        if (down < units)
            return std::min<uint64_t>(limit, down * su);
        return limit;
    }
    default:
        // Parity kinds reconstruct at runtime; post-crash the frozen
        // prefix stops at the first sector mapped to the lost member
        // (tail parity is volatile — see DESIGN.md).
        if (!z.frozen)
            return z.finished ? zone_cap_ : z.fill;
        uint64_t limit = z.finished ? zone_cap_ : z.fill;
        for (uint64_t off = 0; off < limit; ++off) {
            uint64_t stripe = off / (su * static_cast<uint64_t>(units));
            uint32_t u = (off % (su * units)) / su;
            if (chunk_dev(zone, stripe, u) == down)
                return off;
        }
        return limit;
    }
}

// ---------------------------------------------------------------------
// Submit plumbing
// ---------------------------------------------------------------------

void
ZonedEngine::chain_submit(uint32_t dev, uint32_t phys_zone, IoRequest req,
                          IoCallback cb)
{
    // The dev_submit span only opens once the chain dispatches the IO,
    // so a traced request would lose its chain-queue wait. Wrap traced
    // chunks in a request-track span covering enqueue -> completion;
    // request_coverage unions overlapping intervals, so the double
    // accounting with the device span is harmless.
    if (trace_ != nullptr && req.trace_req != 0) {
        uint64_t token = trace_->begin_span(
            "eng.chunk_chain", req.trace_req, obs::kTrackRequest,
            loop_->now());
        cb = [this, token, inner = std::move(cb)](IoResult r) {
            if (token != 0)
                trace_->end_span(token, loop_->now());
            inner(std::move(r));
        };
    }
    chains_[chain_key(dev, phys_zone)].q.emplace_back(std::move(req),
                                                     std::move(cb));
    chain_advance(dev, phys_zone);
}

void
ZonedEngine::chain_advance(uint32_t dev, uint32_t phys_zone)
{
    Chain &c = chains_[chain_key(dev, phys_zone)];
    if (c.busy || c.q.empty())
        return;
    c.busy = true;
    auto item = std::move(c.q.front());
    c.q.pop_front();
    dev_submit(dev, std::move(item.first),
               [this, dev, phys_zone, alive = alive_,
                cb = std::move(item.second)](IoResult r) {
                   cb(std::move(r));
                   if (!*alive)
                       return;
                   chains_[chain_key(dev, phys_zone)].busy = false;
                   chain_advance(dev, phys_zone);
               });
}

void
ZonedEngine::zone_enqueue(uint32_t zone,
                          std::function<void(std::function<void()>)> step)
{
    zones_[zone].wq.push_back(std::move(step));
    zone_advance(zone);
}

void
ZonedEngine::zone_advance(uint32_t zone)
{
    EZone &z = zones_[zone];
    if (z.wq_busy || z.wq.empty())
        return;
    if (rebuild_cur_zone_ == static_cast<int>(zone))
        return; // parked until the zone's rebuild pass completes
    z.wq_busy = true;
    auto step = std::move(z.wq.front());
    z.wq.pop_front();
    step([this, zone, alive = alive_] {
        if (!*alive)
            return;
        zones_[zone].wq_busy = false;
        zone_advance(zone);
    });
}

uint64_t
ZonedEngine::track_io()
{
    uint64_t id = next_io_id_++;
    inflight_ios_.insert(id);
    return id;
}

void
ZonedEngine::untrack_io(uint64_t id)
{
    inflight_ios_.erase(id);
    for (size_t i = 0; i < barriers_.size();) {
        barriers_[i]->waiting.erase(id);
        if (barriers_[i]->waiting.empty()) {
            std::shared_ptr<FlushBarrier> ready = barriers_[i];
            barriers_.erase(barriers_.begin() + i);
            issue_barrier_devices(std::move(ready));
        } else {
            ++i;
        }
    }
}

void
ZonedEngine::barrier_flush(IoCallback cb)
{
    auto b = std::make_shared<FlushBarrier>();
    b->waiting = inflight_ios_;
    b->cb = std::move(cb);
    if (b->waiting.empty()) {
        issue_barrier_devices(std::move(b));
        return;
    }
    barriers_.push_back(std::move(b));
}

void
ZonedEngine::issue_barrier_devices(std::shared_ptr<FlushBarrier> b)
{
    auto pending = std::make_shared<uint32_t>(0);
    auto st = std::make_shared<Status>();
    auto done = [this, b, st] {
        IoResult r;
        r.status = *st;
        b->cb(std::move(r));
    };
    for (uint32_t d = 0; d < num_devices(); ++d) {
        // Includes an in-progress rebuild target: already-rebuilt zones
        // take new writes on it, so acked-FUA durability must cover it.
        if (failed_devs_[d])
            continue;
        ++*pending;
        IoRequest req = IoRequest::flush();
        req.trace_stage = "eng.flush";
        req.cause = obs::Cause::kUserData;
        dev_submit(d, std::move(req),
                   [this, d, pending, st, done](IoResult r) {
                       if (!r.status.is_ok() &&
                           !(escalate_dev_error(d, r.status) &&
                             nfailed_ <= fault_tolerance())) {
                           if (st->is_ok())
                               *st = r.status;
                       }
                       if (--*pending == 0)
                           done();
                   });
    }
    if (*pending == 0) {
        *st = Status(StatusCode::kOffline, "no live members to flush");
        loop_->schedule_after(1, [done] { done(); });
    }
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

std::vector<uint8_t>
ZonedEngine::encode_wal(const WalRecord &rec)
{
    std::vector<uint8_t> sector(kSectorSize, 0);
    uint8_t *p = sector.data();
    std::memcpy(p, &kWalMagic, 8);
    std::memcpy(p + 8, &rec.type, 4);
    std::memcpy(p + 12, &rec.zone, 4);
    std::memcpy(p + 16, &rec.gen, 8);
    std::memcpy(p + 24, &rec.kind, 4);
    std::memcpy(p + 28, &rec.participants, 8);
    uint32_t crc = crc32c(p, kWalCrcOff);
    std::memcpy(p + kWalCrcOff, &crc, 4);
    return sector;
}

bool
ZonedEngine::decode_wal(const uint8_t *sector, WalRecord *out)
{
    uint64_t magic = 0;
    std::memcpy(&magic, sector, 8);
    if (magic != kWalMagic)
        return false;
    uint32_t crc = 0;
    std::memcpy(&crc, sector + kWalCrcOff, 4);
    if (crc != crc32c(sector, kWalCrcOff))
        return false;
    std::memcpy(&out->type, sector + 8, 4);
    std::memcpy(&out->zone, sector + 12, 4);
    std::memcpy(&out->gen, sector + 16, 8);
    std::memcpy(&out->kind, sector + 24, 4);
    std::memcpy(&out->participants, sector + 28, 8);
    return true;
}

void
ZonedEngine::append_wal(WalRecord rec, StatusCb cb)
{
    PROF_SCOPE("eng.wal.append");
    if (wal_next_ >= wal_slots_) {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            cb(Status(StatusCode::kNoSpace, "reset journal full"));
        });
        return;
    }
    const uint64_t slot = wal_next_++;
    auto pending = std::make_shared<uint32_t>(0);
    auto st = std::make_shared<Status>();
    auto shared_cb = std::make_shared<StatusCb>(std::move(cb));
    std::vector<uint8_t> payload = encode_wal(rec);
    for (uint32_t d = 0; d < num_devices(); ++d) {
        if (!dev_live(d))
            continue;
        ++*pending;
        IoRequest req = store_data_
            ? IoRequest::write(slot, payload, /*fua=*/true)
            : IoRequest::write_len(slot, 1, /*fua=*/true);
        req.trace_stage = "eng.wal";
        req.cause = obs::Cause::kWalMd;
        chain_submit(d, 0, std::move(req),
                     [this, d, pending, st, shared_cb](IoResult r) {
                         if (!r.status.is_ok() &&
                             !(escalate_dev_error(d, r.status) &&
                               nfailed_ <= fault_tolerance())) {
                             if (st->is_ok())
                                 *st = r.status;
                         }
                         if (--*pending == 0) {
                             if (st->is_ok())
                                 ++stats_.wal_appends;
                             (*shared_cb)(*st);
                         }
                     });
    }
    if (*pending == 0) {
        loop_->schedule_after(1, [shared_cb] {
            (*shared_cb)(
                Status(StatusCode::kOffline, "no live journal members"));
        });
    }
}

// ---------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------

void
ZonedEngine::write(uint64_t lba, std::vector<uint8_t> data,
                   WriteFlags flags, IoCallback cb)
{
    uint32_t n = static_cast<uint32_t>(data.size() / kSectorSize);
    write_internal(lba, std::move(data), n, flags, std::move(cb));
}

void
ZonedEngine::write_len(uint64_t lba, uint32_t nsectors, WriteFlags flags,
                       IoCallback cb)
{
    write_internal(lba, {}, nsectors, flags, std::move(cb));
}

void
ZonedEngine::write_internal(uint64_t lba, std::vector<uint8_t> data,
                            uint32_t nsectors, WriteFlags flags,
                            IoCallback cb)
{
    PROF_SCOPE("eng.write");
    ++stats_.logical_writes;
    stats_.sectors_written += nsectors;
    if (flags.fua)
        ++stats_.fua_writes;
    auto fail = [this, &cb](StatusCode code, const char *msg) {
        loop_->schedule_after(1, [cb = std::move(cb), code, msg] {
            IoResult r;
            r.status = Status(code, msg);
            cb(std::move(r));
        });
    };
    if (nsectors == 0 || lba + nsectors > capacity()) {
        fail(StatusCode::kInvalidArgument, "write out of range");
        return;
    }
    const uint32_t zone = static_cast<uint32_t>(lba / zone_cap_);
    const uint64_t off = lba % zone_cap_;
    if (off + nsectors > zone_cap_) {
        fail(StatusCode::kZoneBoundary, "write crosses a zone boundary");
        return;
    }
    EZone &z = zones_[zone];
    if (z.frozen) {
        fail(StatusCode::kReadOnly,
             "recovered zone is read-only until reset");
        return;
    }
    if (z.resetting) {
        fail(StatusCode::kBusy, "zone reset in progress");
        return;
    }
    if (z.finished || z.finish_pending) {
        fail(StatusCode::kNoSpace, "zone is finished");
        return;
    }
    if (off != z.fill) {
        fail(StatusCode::kWritePointerMismatch,
             "write not at the zone write pointer");
        return;
    }
    if (nfailed_ > fault_tolerance()) {
        fail(StatusCode::kOffline, "insufficient surviving members");
        return;
    }
    z.fill += nsectors;

    auto ctx = std::make_shared<WriteCtx>();
    ctx->flags = flags;
    ctx->nsectors = nsectors;
    ctx->cb = std::move(cb);
    ctx->t0 = loop_->now();
    if (trace_ != nullptr)
        ctx->req_id = trace_->next_request_id();
    auto dptr = std::make_shared<std::vector<uint8_t>>(std::move(data));
    zone_enqueue(zone, [this, zone, off, dptr, nsectors, flags,
                        ctx](std::function<void()> done) {
        auto proceed = [this, zone, off, dptr, nsectors, ctx, done] {
            decide_zone_kind(zone, [this, zone, off, dptr, nsectors, ctx,
                                    done](Status s) {
                if (!s.is_ok()) {
                    ctx->status = s;
                    ctx->issued_all = true;
                    if (ctx->pending == 0)
                        finish_write(ctx);
                    done();
                    return;
                }
                issue_write(zone, off, dptr, nsectors, ctx);
                done();
            });
        };
        if (flags.preflush) {
            barrier_flush([this, ctx, proceed, done](IoResult r) {
                if (!r.status.is_ok()) {
                    ctx->status = r.status;
                    ctx->issued_all = true;
                    if (ctx->pending == 0)
                        finish_write(ctx);
                    done();
                    return;
                }
                proceed();
            });
        } else {
            proceed();
        }
    });
}

void
ZonedEngine::decide_zone_kind(uint32_t zone,
                              std::function<void(Status)> cb)
{
    EZone &z = zones_[zone];
    if (z.kind_decided) {
        cb(Status::ok());
        return;
    }
    // Auto mode: hot zones (frequently reset) get mirrored, cold zones
    // get parity. The decision is journaled FUA before any data of the
    // generation hits media so mount can interpret the zone.
    ZoneKind k = z.gen >= cfg_.auto_hot_resets ? ZoneKind::kMirror
                                               : ZoneKind::kParity;
    z.kind = k;
    if (k == ZoneKind::kMirror)
        ++stats_.auto_mirror_zones;
    else
        ++stats_.auto_parity_zones;
    WalRecord rec;
    rec.type = WalRecord::kKind;
    rec.zone = zone;
    rec.gen = z.gen;
    rec.kind = static_cast<uint32_t>(k);
    append_wal(rec, [this, zone, cb = std::move(cb)](Status s) {
        if (s.is_ok())
            zones_[zone].kind_decided = true;
        cb(s);
    });
}

void
ZonedEngine::issue_write(uint32_t zone, uint64_t off,
                         std::shared_ptr<std::vector<uint8_t>> data,
                         uint32_t nsectors, std::shared_ptr<WriteCtx> ctx)
{
    // The total-write span opens here — after the per-zone queue wait
    // and the zone-kind decision — so its window is the issue-to-ack
    // path the chunk sub-spans can actually account for.
    if (trace_ != nullptr) {
        ctx->total_token = trace_->begin_span(
            "eng.write", ctx->req_id, obs::kTrackRequest, loop_->now());
    }
    EZone &z = zones_[zone];
    const bool store = store_data_ && !data->empty();
    const uint32_t su = cfg_.su_sectors;
    const uint32_t units = units_of(z.kind);
    auto submit_piece = [this, zone, ctx](uint32_t d, uint64_t row,
                                          std::vector<uint8_t> payload,
                                          uint32_t len) {
        IoRequest req = payload.empty()
            ? IoRequest::write_len(dev_row_lba(zone, row), len)
            : IoRequest::write(dev_row_lba(zone, row), std::move(payload));
        req.trace_stage = "eng.chunk_write";
        req.cause = ctx->flags.origin;
        req.trace_req = ctx->req_id;
        uint64_t id = track_io();
        ++ctx->pending;
        chain_submit(d, phys_zone(zone), std::move(req),
                     [this, ctx, d, id](IoResult r) {
                         untrack_io(id);
                         chunk_done(ctx, d, r.status);
                     });
    };

    if (z.kind == ZoneKind::kMirror) {
        bool any = false;
        for (uint32_t d = 0; d < num_devices(); ++d) {
            if (dev_down_for_zone(d, zone))
                continue;
            any = true;
            submit_piece(d, off, store ? *data : std::vector<uint8_t>{},
                         nsectors);
        }
        if (!any && ctx->status.is_ok())
            ctx->status =
                Status(StatusCode::kOffline, "no live mirror members");
    } else {
        uint64_t pos = off;
        size_t db = 0; // sectors consumed from `data`
        while (pos < off + nsectors) {
            const uint64_t stripe_sect = su * static_cast<uint64_t>(units);
            uint64_t stripe = pos / stripe_sect;
            uint64_t in_stripe = pos % stripe_sect;
            uint32_t u = static_cast<uint32_t>(in_stripe / su);
            uint64_t o = in_stripe % su;
            uint32_t len = static_cast<uint32_t>(
                std::min<uint64_t>(su - o, off + nsectors - pos));
            uint64_t row = stripe * su + o;
            if (z.kind == ZoneKind::kParity ||
                z.kind == ZoneKind::kDualParity)
                note_tail(zone, pos, len,
                          store ? data->data() + db * kSectorSize
                                : nullptr);
            for (uint32_t d : unit_devs(zone, stripe, u)) {
                if (dev_down_for_zone(d, zone)) {
                    if (z.kind == ZoneKind::kStripe0 &&
                        ctx->status.is_ok())
                        ctx->status = Status(StatusCode::kOffline,
                                             "raid0 member lost");
                    continue;
                }
                std::vector<uint8_t> slice;
                if (store) {
                    prof::count_alloc(static_cast<uint64_t>(len) *
                                      kSectorSize);
                    prof::count_copy(static_cast<uint64_t>(len) *
                                     kSectorSize);
                    slice.assign(
                        data->begin() + db * kSectorSize,
                        data->begin() + (db + len) * kSectorSize);
                }
                submit_piece(d, row, std::move(slice), len);
            }
            pos += len;
            db += len;
        }
    }
    if (store)
        note_written_crcs(zone, off, data->data(), nsectors);
    ctx->issued_all = true;
    if (ctx->pending == 0)
        finish_write(ctx);
}

void
ZonedEngine::note_tail(uint32_t zone, uint64_t pos, uint32_t n,
                       const uint8_t *bytes)
{
    EZone &z = zones_[zone];
    const uint32_t su = cfg_.su_sectors;
    const uint64_t stripe_sect =
        su * static_cast<uint64_t>(units_of(z.kind));
    uint64_t stripe = pos / stripe_sect;
    uint64_t in_stripe = pos % stripe_sect;
    TailBuf &t = z.tails[stripe];
    if (store_data_ && t.data.empty())
        t.data.assign(stripe_sect * kSectorSize, 0);
    if (bytes != nullptr && !t.data.empty())
        std::memcpy(t.data.data() + in_stripe * kSectorSize, bytes,
                    static_cast<size_t>(n) * kSectorSize);
    t.filled += n;
    if (t.filled == stripe_sect) {
        t.complete = true;
        complete_stripe(zone, stripe);
    }
}

void
ZonedEngine::complete_stripe(uint32_t zone, uint64_t stripe)
{
    PROF_SCOPE("eng.parity.compute");
    EZone &z = zones_[zone];
    TailBuf &t = z.tails[stripe];
    const uint32_t su = cfg_.su_sectors;
    const uint32_t units = units_of(z.kind);
    const size_t chunk_bytes = static_cast<size_t>(su) * kSectorSize;
    auto parity_cb = [this, zone, stripe](uint32_t d) {
        return [this, zone, stripe, d, alive = alive_](IoResult r) {
            if (!*alive)
                return;
            if (!r.status.is_ok())
                escalate_dev_error(d, r.status);
            // The tail served degraded reads until parity landed; it
            // can go once every issued parity write completed.
            EZone &ez = zones_[zone];
            auto it = ez.tails.find(stripe);
            if (it != ez.tails.end() &&
                --it->second.parity_pending == 0 && it->second.complete)
                ez.tails.erase(it);
        };
    };
    int pd = parity_dev(zone, stripe);
    if (pd >= 0 && !dev_down_for_zone(pd, zone)) {
        IoRequest req;
        if (store_data_) {
            std::vector<uint8_t> p(chunk_bytes, 0);
            for (uint32_t u = 0; u < units; ++u)
                xor_bytes(p.data(), t.data.data() + u * chunk_bytes,
                          chunk_bytes);
            req = IoRequest::write(dev_row_lba(zone, stripe * su),
                                   std::move(p));
        } else {
            req = IoRequest::write_len(dev_row_lba(zone, stripe * su), su);
        }
        req.trace_stage = "eng.parity";
        req.cause = obs::Cause::kParity;
        ++stats_.parity_writes;
        ++t.parity_pending;
        chain_submit(static_cast<uint32_t>(pd), phys_zone(zone),
                     std::move(req), parity_cb(pd));
    }
    int qd = q_dev(zone, stripe);
    if (qd >= 0 && !dev_down_for_zone(qd, zone)) {
        IoRequest req;
        if (store_data_) {
            std::vector<uint8_t> q(chunk_bytes, 0);
            for (uint32_t u = 0; u < units; ++u)
                gf256::accumulate(q.data(),
                                  t.data.data() + u * chunk_bytes,
                                  chunk_bytes, u);
            req = IoRequest::write(dev_row_lba(zone, stripe * su),
                                   std::move(q));
        } else {
            req = IoRequest::write_len(dev_row_lba(zone, stripe * su), su);
        }
        req.trace_stage = "eng.q_parity";
        req.cause = obs::Cause::kParity;
        ++stats_.q_parity_writes;
        ++t.parity_pending;
        chain_submit(static_cast<uint32_t>(qd), phys_zone(zone),
                     std::move(req), parity_cb(qd));
    }
    if (t.parity_pending == 0)
        z.tails.erase(stripe);
}

void
ZonedEngine::chunk_done(std::shared_ptr<WriteCtx> ctx, uint32_t dev,
                        const Status &s)
{
    if (!s.is_ok()) {
        bool now_failed = escalate_dev_error(dev, s);
        if (!(now_failed && nfailed_ <= fault_tolerance()) &&
            ctx->status.is_ok())
            ctx->status = s;
    }
    if (--ctx->pending == 0 && ctx->issued_all)
        finish_write(ctx);
}

void
ZonedEngine::finish_write(std::shared_ptr<WriteCtx> ctx)
{
    auto ack = [this, ctx](Status s) {
        IoResult r;
        r.status = std::move(s);
        if (write_lat_ != nullptr)
            write_lat_->record(loop_->now() - ctx->t0);
        if (ledger_ != nullptr && r.status.is_ok() &&
            ctx->flags.origin == obs::Cause::kUserData)
            ledger_->note_user_write(ctx->nsectors);
        if (trace_ != nullptr && ctx->total_token != 0) {
            trace_->end_span(ctx->total_token, loop_->now());
            ctx->total_token = 0;
        }
        ctx->cb(std::move(r));
    };
    if (!ctx->status.is_ok()) {
        loop_->schedule_after(1, [ack, ctx] { ack(ctx->status); });
        return;
    }
    if (ctx->flags.fua) {
        // A FUA ack promises the whole logical prefix durable; chunks
        // of earlier writes live on other members' caches, so FUA is
        // completed as write + dependency flush (cf. RAIZN §5.1).
        ++stats_.fua_dependency_flushes;
        barrier_flush([ack](IoResult r) { ack(r.status); });
        return;
    }
    loop_->schedule_after(1, [ack] { ack(Status::ok()); });
}

void
ZonedEngine::note_written_crcs(uint32_t zone, uint64_t off,
                               const uint8_t *bytes, uint32_t nsectors)
{
    EZone &z = zones_[zone];
    if (z.crcs.empty()) {
        z.crcs.assign(zone_cap_, 0);
        z.crc_valid.assign(zone_cap_, false);
    }
    for (uint32_t i = 0; i < nsectors; ++i) {
        z.crcs[off + i] =
            crc32c(bytes + static_cast<size_t>(i) * kSectorSize,
                   kSectorSize);
        z.crc_valid[off + i] = true;
    }
}

// ---------------------------------------------------------------------
// Flush / reset / finish
// ---------------------------------------------------------------------

void
ZonedEngine::flush(IoCallback cb)
{
    ++stats_.flushes;
    barrier_flush(std::move(cb));
}

void
ZonedEngine::reset_zone(uint32_t zone, IoCallback cb)
{
    if (zone >= nzones_) {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            IoResult r;
            r.status =
                Status(StatusCode::kInvalidArgument, "zone out of range");
            cb(std::move(r));
        });
        return;
    }
    auto shared_cb = std::make_shared<IoCallback>(std::move(cb));
    zone_enqueue(zone, [this, zone,
                        shared_cb](std::function<void()> done) {
        EZone &z = zones_[zone];
        auto ack_sched = [this, shared_cb, done](Status s) {
            loop_->schedule_after(1, [shared_cb, s = std::move(s)] {
                IoResult r;
                r.status = s;
                (*shared_cb)(std::move(r));
            });
            done();
        };
        if (rebuilding_) {
            ack_sched(Status(StatusCode::kBusy, "rebuild in progress"));
            return;
        }
        if (z.fill == 0 && !z.finished && !z.finish_pending) {
            ack_sched(Status::ok()); // empty zone: reset is a no-op
            return;
        }
        z.resetting = true;
        const uint64_t newgen = z.gen + 1;
        WalRecord intent;
        intent.type = WalRecord::kResetIntent;
        intent.zone = zone;
        intent.gen = newgen;
        append_wal(intent, [this, zone, newgen, shared_cb,
                            done](Status s) {
            if (!s.is_ok()) {
                zones_[zone].resetting = false;
                loop_->schedule_after(1, [shared_cb, s] {
                    IoResult r;
                    r.status = s;
                    (*shared_cb)(std::move(r));
                });
                done();
                return;
            }
            // Intent is durable everywhere; physically reset the zone
            // on every non-failed member (this also cures staleness).
            uint64_t parts = 0;
            auto pending = std::make_shared<uint32_t>(0);
            auto st = std::make_shared<Status>();
            for (uint32_t d = 0; d < num_devices(); ++d)
                if (!failed_devs_[d])
                    parts |= bit(d);
            auto after = [this, zone, newgen, parts, st, shared_cb,
                          done] {
                if (!st->is_ok()) {
                    zones_[zone].resetting = false;
                    IoResult r;
                    r.status = *st;
                    (*shared_cb)(std::move(r));
                    done();
                    return;
                }
                WalRecord drec;
                drec.type = WalRecord::kResetDone;
                drec.zone = zone;
                drec.gen = newgen;
                drec.participants = parts;
                append_wal(drec, [this, zone, newgen, parts, shared_cb,
                                  done](Status s2) {
                    EZone &ez = zones_[zone];
                    ez.resetting = false;
                    if (!s2.is_ok()) {
                        IoResult r;
                        r.status = s2;
                        (*shared_cb)(std::move(r));
                        done();
                        return;
                    }
                    ez.fill = 0;
                    ez.gen = newgen;
                    ez.finished = false;
                    ez.finish_pending = false;
                    ez.frozen = false;
                    ez.tails.clear();
                    ez.crcs.clear();
                    ez.crc_valid.clear();
                    ez.rec_fill.clear();
                    ez.participants = parts;
                    ez.kind = fixed_kind();
                    ez.kind_decided = cfg_.mode != RaidMode::kAuto;
                    ++stats_.zone_resets;
                    IoResult r;
                    (*shared_cb)(std::move(r));
                    done();
                });
            };
            for (uint32_t d = 0; d < num_devices(); ++d) {
                if (failed_devs_[d])
                    continue;
                ++*pending;
                IoRequest req = IoRequest::zone_reset(
                    static_cast<uint64_t>(zone + 1) *
                    devs_[0]->geometry().zone_size);
                req.trace_stage = "eng.zone_reset";
                req.cause = obs::Cause::kZoneMgmt;
                chain_submit(d, phys_zone(zone), std::move(req),
                             [this, d, pending, st, after](IoResult r) {
                                 if (!r.status.is_ok() &&
                                     !(escalate_dev_error(d, r.status) &&
                                       nfailed_ <= fault_tolerance())) {
                                     if (st->is_ok())
                                         *st = r.status;
                                 }
                                 if (--*pending == 0)
                                     after();
                             });
            }
            if (*pending == 0) {
                *st = Status(StatusCode::kOffline, "no live members");
                loop_->schedule_after(1, [after] { after(); });
            }
        });
    });
}

void
ZonedEngine::finish_zone(uint32_t zone, IoCallback cb)
{
    if (zone >= nzones_) {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            IoResult r;
            r.status =
                Status(StatusCode::kInvalidArgument, "zone out of range");
            cb(std::move(r));
        });
        return;
    }
    auto shared_cb = std::make_shared<IoCallback>(std::move(cb));
    zone_enqueue(zone, [this, zone,
                        shared_cb](std::function<void()> done) {
        EZone &z = zones_[zone];
        auto ack_sched = [this, shared_cb, done](Status s) {
            loop_->schedule_after(1, [shared_cb, s = std::move(s)] {
                IoResult r;
                r.status = s;
                (*shared_cb)(std::move(r));
            });
            done();
        };
        if (z.finished) {
            ack_sched(Status::ok());
            return;
        }
        if (z.frozen) {
            ack_sched(Status(StatusCode::kReadOnly,
                             "recovered zone is read-only until reset"));
            return;
        }
        if (rebuilding_) {
            ack_sched(Status(StatusCode::kBusy, "rebuild in progress"));
            return;
        }
        z.finish_pending = true;
        auto pending = std::make_shared<uint32_t>(0);
        auto st = std::make_shared<Status>();
        auto after = [this, zone, st, shared_cb, done] {
            EZone &ez = zones_[zone];
            ez.finish_pending = false;
            if (st->is_ok()) {
                ez.finished = true;
                ez.fill = zone_cap_;
                ++stats_.zone_finishes;
            }
            IoResult r;
            r.status = *st;
            (*shared_cb)(std::move(r));
            done();
        };
        // A finished zone is fully redundant on media: the device-level
        // finish pads every data row with zeros, so the open tail
        // stripe's parity must be sealed as if the stripe were
        // zero-padded to full width. The per-device submit chains keep
        // each seal row ahead of that member's finish command.
        const uint32_t su = cfg_.su_sectors;
        const uint32_t units = units_of(z.kind);
        const size_t chunk_bytes = static_cast<size_t>(su) * kSectorSize;
        for (auto it = z.tails.begin(); it != z.tails.end();) {
            TailBuf &t = it->second;
            if (t.complete) {
                ++it;
                continue;
            }
            const uint64_t stripe = it->first;
            auto seal_cb = [this, zone, stripe, pending, st,
                            after](uint32_t d) {
                return [this, zone, stripe, d, pending, st,
                        after](IoResult r) {
                    if (!r.status.is_ok() &&
                        !(escalate_dev_error(d, r.status) &&
                          nfailed_ <= fault_tolerance())) {
                        if (st->is_ok())
                            *st = r.status;
                    }
                    EZone &ez = zones_[zone];
                    auto ti = ez.tails.find(stripe);
                    if (ti != ez.tails.end() &&
                        --ti->second.parity_pending == 0)
                        ez.tails.erase(ti);
                    if (--*pending == 0)
                        after();
                };
            };
            int pd = parity_dev(zone, stripe);
            if (pd >= 0 && !dev_down_for_zone(pd, zone)) {
                IoRequest req;
                if (store_data_) {
                    std::vector<uint8_t> p(chunk_bytes, 0);
                    for (uint32_t u = 0; u < units; ++u)
                        xor_bytes(p.data(),
                                  t.data.data() + u * chunk_bytes,
                                  chunk_bytes);
                    req = IoRequest::write(dev_row_lba(zone, stripe * su),
                                           std::move(p));
                } else {
                    req = IoRequest::write_len(
                        dev_row_lba(zone, stripe * su), su);
                }
                req.trace_stage = "eng.parity_seal";
                req.cause = obs::Cause::kParity;
                ++stats_.parity_writes;
                ++t.parity_pending;
                ++*pending;
                chain_submit(static_cast<uint32_t>(pd), phys_zone(zone),
                             std::move(req), seal_cb(pd));
            }
            int qd = q_dev(zone, stripe);
            if (qd >= 0 && !dev_down_for_zone(qd, zone)) {
                IoRequest req;
                if (store_data_) {
                    std::vector<uint8_t> q(chunk_bytes, 0);
                    for (uint32_t u = 0; u < units; ++u)
                        gf256::accumulate(q.data(),
                                          t.data.data() + u * chunk_bytes,
                                          chunk_bytes, u);
                    req = IoRequest::write(dev_row_lba(zone, stripe * su),
                                           std::move(q));
                } else {
                    req = IoRequest::write_len(
                        dev_row_lba(zone, stripe * su), su);
                }
                req.trace_stage = "eng.q_seal";
                req.cause = obs::Cause::kParity;
                ++stats_.q_parity_writes;
                ++t.parity_pending;
                ++*pending;
                chain_submit(static_cast<uint32_t>(qd), phys_zone(zone),
                             std::move(req), seal_cb(qd));
            }
            if (t.parity_pending == 0) {
                it = z.tails.erase(it); // no live parity member to seal
            } else {
                t.complete = true; // retired once the seal writes ack
                ++it;
            }
        }
        for (uint32_t d = 0; d < num_devices(); ++d) {
            if (failed_devs_[d])
                continue;
            ++*pending;
            IoRequest req = IoRequest::zone_finish(
                static_cast<uint64_t>(zone + 1) *
                devs_[0]->geometry().zone_size);
            req.trace_stage = "eng.zone_finish";
            req.cause = obs::Cause::kZoneMgmt;
            chain_submit(d, phys_zone(zone), std::move(req),
                         [this, d, pending, st, after](IoResult r) {
                             if (!r.status.is_ok() &&
                                 !(escalate_dev_error(d, r.status) &&
                                   nfailed_ <= fault_tolerance())) {
                                 if (st->is_ok())
                                     *st = r.status;
                             }
                             if (--*pending == 0)
                                 after();
                         });
        }
        if (*pending == 0) {
            *st = Status(StatusCode::kOffline, "no live members");
            loop_->schedule_after(1, [after] { after(); });
        }
    });
}

// ---------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------

void
ZonedEngine::read(uint64_t lba, uint32_t nsectors, IoCallback cb)
{
    PROF_SCOPE("eng.read");
    ++stats_.logical_reads;
    stats_.sectors_read += nsectors;
    if (ledger_ != nullptr) {
        cb = [this, nsectors, inner = std::move(cb)](IoResult r) {
            if (r.status.is_ok())
                ledger_->note_user_read(nsectors);
            inner(std::move(r));
        };
    }
    if (nsectors == 0 || lba + nsectors > capacity()) {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            IoResult r;
            r.status =
                Status(StatusCode::kInvalidArgument, "read out of range");
            cb(std::move(r));
        });
        return;
    }
    struct Agg {
        std::vector<std::vector<uint8_t>> parts;
        uint32_t pending = 0;
        Status status;
        Tick t0 = 0;
        IoCallback cb;
    };
    auto agg = std::make_shared<Agg>();
    agg->t0 = loop_->now();
    agg->cb = std::move(cb);
    struct Seg {
        uint32_t zone;
        uint64_t off;
        uint32_t len;
    };
    std::vector<Seg> segs;
    uint64_t pos = lba;
    uint32_t left = nsectors;
    while (left > 0) {
        uint32_t zone = static_cast<uint32_t>(pos / zone_cap_);
        uint64_t off = pos % zone_cap_;
        uint32_t len = static_cast<uint32_t>(
            std::min<uint64_t>(zone_cap_ - off, left));
        segs.push_back({zone, off, len});
        pos += len;
        left -= len;
    }
    agg->parts.resize(segs.size());
    agg->pending = static_cast<uint32_t>(segs.size());
    for (size_t i = 0; i < segs.size(); ++i) {
        read_segment(segs[i].zone, segs[i].off, segs[i].len,
                     [this, agg, i](Status s, std::vector<uint8_t> d) {
                         if (!s.is_ok() && agg->status.is_ok())
                             agg->status = s;
                         agg->parts[i] = std::move(d);
                         if (--agg->pending > 0)
                             return;
                         IoResult r;
                         r.status = agg->status;
                         if (store_data_ && r.status.is_ok()) {
                             for (auto &p : agg->parts)
                                 r.data.insert(r.data.end(), p.begin(),
                                               p.end());
                         }
                         if (read_lat_ != nullptr)
                             read_lat_->record(loop_->now() - agg->t0);
                         agg->cb(std::move(r));
                     });
    }
}

void
ZonedEngine::read_segment(uint32_t zone, uint64_t off, uint32_t len,
                          DataCb cb)
{
    EZone &z = zones_[zone];
    const uint64_t limit = z.finished ? zone_cap_ : z.fill;
    if (off + len > limit) {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            cb(Status(StatusCode::kInvalidArgument,
                      "read beyond the zone write pointer"),
               {});
        });
        return;
    }
    if (z.kind == ZoneKind::kMirror) {
        std::vector<uint32_t> cands(num_devices());
        for (uint32_t d = 0; d < num_devices(); ++d)
            cands[d] = d;
        auto srcs = std::make_shared<std::vector<uint32_t>>(
            mirror_sources(zone, off + len, cands));
        if (srcs->empty()) {
            loop_->schedule_after(1, [cb = std::move(cb)] {
                cb(Status(StatusCode::kOffline, "no live mirror source"),
                   {});
            });
            return;
        }
        read_mirror(zone, off, len, std::move(srcs), 0, std::move(cb));
        return;
    }
    // Striped kinds: fan out per chunk piece and reassemble in order.
    struct Piece {
        uint64_t stripe;
        uint32_t u;
        uint64_t o;
        uint32_t n;
    };
    std::vector<Piece> pieces;
    const uint32_t su = cfg_.su_sectors;
    const uint64_t stripe_sect =
        su * static_cast<uint64_t>(units_of(z.kind));
    uint64_t pos = off;
    while (pos < off + len) {
        uint64_t stripe = pos / stripe_sect;
        uint64_t in_stripe = pos % stripe_sect;
        uint32_t u = static_cast<uint32_t>(in_stripe / su);
        uint64_t o = in_stripe % su;
        uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(su - o, off + len - pos));
        pieces.push_back({stripe, u, o, n});
        pos += n;
    }
    struct SubAgg {
        std::vector<std::vector<uint8_t>> parts;
        uint32_t pending = 0;
        Status status;
        DataCb cb;
    };
    auto agg = std::make_shared<SubAgg>();
    agg->parts.resize(pieces.size());
    agg->pending = static_cast<uint32_t>(pieces.size());
    agg->cb = std::move(cb);
    for (size_t i = 0; i < pieces.size(); ++i) {
        const Piece &p = pieces[i];
        read_chunk(zone, p.stripe, p.u, p.o, p.n,
                   [this, agg, i](Status s, std::vector<uint8_t> d) {
                       if (!s.is_ok() && agg->status.is_ok())
                           agg->status = s;
                       agg->parts[i] = std::move(d);
                       if (--agg->pending > 0)
                           return;
                       std::vector<uint8_t> out;
                       if (store_data_ && agg->status.is_ok())
                           for (auto &part : agg->parts)
                               out.insert(out.end(), part.begin(),
                                          part.end());
                       agg->cb(agg->status, std::move(out));
                   });
    }
}

std::vector<uint32_t>
ZonedEngine::mirror_sources(uint32_t zone, uint64_t row_end,
                            const std::vector<uint32_t> &cands) const
{
    const EZone &z = zones_[zone];
    std::vector<uint32_t> out;
    for (uint32_t d : cands) {
        if (dev_down_for_zone(d, zone))
            continue;
        if (!z.rec_fill.empty() && z.rec_fill[d] < row_end)
            continue;
        out.push_back(d);
    }
    return out;
}

void
ZonedEngine::read_mirror(uint32_t zone, uint64_t off, uint32_t len,
                         std::shared_ptr<std::vector<uint32_t>> srcs,
                         size_t idx, DataCb cb)
{
    if (idx >= srcs->size()) {
        cb(Status(StatusCode::kCorruption,
                  "all mirror copies failed validation"),
           {});
        return;
    }
    uint32_t d = (*srcs)[idx];
    IoRequest req = IoRequest::read(dev_row_lba(zone, off), len);
    req.trace_stage = "eng.mirror_read";
    req.cause = obs::Cause::kUserData;
    chain_submit(
        d, phys_zone(zone), std::move(req),
        [this, zone, off, len, srcs, idx, d,
         cb = std::move(cb)](IoResult r) mutable {
            if (!r.status.is_ok()) {
                escalate_dev_error(d, r.status);
                read_mirror(zone, off, len, std::move(srcs), idx + 1,
                            std::move(cb));
                return;
            }
            if (store_data_ &&
                !crc_range_ok(zone, off, r.data.data(), len)) {
                ++stats_.crc_mismatches;
                if (idx + 1 < srcs->size()) {
                    ++stats_.read_repairs;
                    read_mirror(zone, off, len, std::move(srcs), idx + 1,
                                std::move(cb));
                    return;
                }
                cb(Status(StatusCode::kCorruption,
                          "mirror copy failed checksum"),
                   {});
                return;
            }
            cb(Status::ok(), std::move(r.data));
        });
}

void
ZonedEngine::read_chunk(uint32_t zone, uint64_t stripe, uint32_t u,
                        uint64_t o, uint32_t n, DataCb cb)
{
    EZone &z = zones_[zone];
    const uint32_t su = cfg_.su_sectors;
    const uint64_t row0 = stripe * su + o;
    std::vector<uint32_t> live =
        mirror_sources(zone, row0 + n, unit_devs(zone, stripe, u));
    const bool parity_kind = z.kind == ZoneKind::kParity ||
                             z.kind == ZoneKind::kDualParity;
    if (live.empty()) {
        ++stats_.degraded_reads;
        // Open-stripe data whose parity never reached media is served
        // from the in-memory tail (RAIZN closes this hole durably with
        // the partial-parity log; the engine only covers runtime).
        auto it = z.tails.find(stripe);
        const uint64_t in_stripe = static_cast<uint64_t>(u) * su + o;
        if (parity_kind && it != z.tails.end() && store_data_ &&
            !it->second.data.empty() &&
            in_stripe + n <= it->second.filled) {
            std::vector<uint8_t> out(
                it->second.data.begin() + in_stripe * kSectorSize,
                it->second.data.begin() + (in_stripe + n) * kSectorSize);
            loop_->schedule_after(1, [cb = std::move(cb),
                                      out = std::move(out)]() mutable {
                cb(Status::ok(), std::move(out));
            });
            return;
        }
        if (parity_kind) {
            stats_.reconstructed_sectors += n;
            reconstruct_chunk(zone, stripe, u, o, n, std::move(cb));
            return;
        }
        loop_->schedule_after(1, [cb = std::move(cb)] {
            cb(Status(StatusCode::kOffline, "data unit lost"), {});
        });
        return;
    }
    // Try each live replica; parity kinds fall back to reconstruction
    // when every replica errors or fails its checksum.
    auto attempt = std::make_shared<std::function<void(size_t)>>();
    auto srcs = std::make_shared<std::vector<uint32_t>>(std::move(live));
    auto shared_cb = std::make_shared<DataCb>(std::move(cb));
    // The recursive closure holds only a weak reference to itself;
    // each in-flight completion pins a strong one, so the function is
    // destroyed (no cycle) as soon as the last completion runs.
    std::weak_ptr<std::function<void(size_t)>> wattempt = attempt;
    *attempt = [this, zone, stripe, u, o, n, row0, srcs, shared_cb,
                parity_kind, wattempt](size_t idx) {
        EZone &ez = zones_[zone];
        if (idx >= srcs->size()) {
            if (parity_kind) {
                ++stats_.read_repairs;
                stats_.reconstructed_sectors += n;
                reconstruct_chunk(zone, stripe, u, o, n,
                                  [shared_cb](Status s,
                                              std::vector<uint8_t> d) {
                                      (*shared_cb)(s, std::move(d));
                                  });
                return;
            }
            (*shared_cb)(Status(StatusCode::kCorruption,
                                "data unit failed validation"),
                         {});
            return;
        }
        uint32_t d = (*srcs)[idx];
        IoRequest req = IoRequest::read(dev_row_lba(zone, row0), n);
        req.trace_stage = "eng.chunk_read";
        req.cause = obs::Cause::kUserData;
        const uint64_t crc_off =
            stripe * cfg_.su_sectors *
                static_cast<uint64_t>(units_of(ez.kind)) +
            static_cast<uint64_t>(u) * cfg_.su_sectors + o;
        auto self = wattempt.lock(); // caller holds a strong ref
        chain_submit(d, phys_zone(zone), std::move(req),
                     [this, zone, d, idx, crc_off, n, shared_cb,
                      self](IoResult r) {
                         if (!r.status.is_ok()) {
                             escalate_dev_error(d, r.status);
                             (*self)(idx + 1);
                             return;
                         }
                         if (store_data_ &&
                             !crc_range_ok(zone, crc_off, r.data.data(),
                                           n)) {
                             ++stats_.crc_mismatches;
                             (*self)(idx + 1);
                             return;
                         }
                         if (idx > 0)
                             ++stats_.read_repairs;
                         (*shared_cb)(Status::ok(), std::move(r.data));
                     });
    };
    (*attempt)(0);
}

void
ZonedEngine::reconstruct_chunk(uint32_t zone, uint64_t stripe, uint32_t u,
                               uint64_t o, uint32_t n, DataCb cb)
{
    EZone &z = zones_[zone];
    if (!store_data_) {
        loop_->schedule_after(1,
                              [cb = std::move(cb)] { cb(Status::ok(), {}); });
        return;
    }
    const uint32_t su = cfg_.su_sectors;
    const uint32_t units = units_of(z.kind);
    const uint64_t row0 = stripe * su + o;
    auto avail_rows = [this, &z, zone, row0, n](uint32_t d) {
        return !dev_down_for_zone(d, zone) &&
               (z.rec_fill.empty() || z.rec_fill[d] >= row0 + n);
    };
    std::vector<uint32_t> missing{u};
    std::vector<uint32_t> have;
    for (uint32_t v = 0; v < units; ++v) {
        if (v == u)
            continue;
        if (avail_rows(chunk_dev(zone, stripe, v)))
            have.push_back(v);
        else
            missing.push_back(v);
    }
    int pd = parity_dev(zone, stripe);
    int qd = q_dev(zone, stripe);
    bool p_ok = pd >= 0 && avail_rows(static_cast<uint32_t>(pd));
    bool q_ok = qd >= 0 && avail_rows(static_cast<uint32_t>(qd));
    char plan;
    if (missing.size() == 1 && p_ok)
        plan = 'P';
    else if (missing.size() == 1 && q_ok)
        plan = 'Q';
    else if (missing.size() == 2 && p_ok && q_ok)
        plan = '2';
    else {
        loop_->schedule_after(1, [cb = std::move(cb)] {
            cb(Status(StatusCode::kIoError,
                      "insufficient redundancy to reconstruct"),
               {});
        });
        return;
    }
    struct Recon {
        std::map<uint32_t, std::vector<uint8_t>> data; // unit -> bytes
        std::vector<uint8_t> p, q;
        uint32_t pending = 0;
        Status status;
    };
    auto rc = std::make_shared<Recon>();
    auto shared_cb = std::make_shared<DataCb>(std::move(cb));
    const size_t bytes = static_cast<size_t>(n) * kSectorSize;
    auto complete = [this, zone, stripe, u, o, n, su, units, plan, bytes,
                     missing, rc, shared_cb] {
        if (!rc->status.is_ok()) {
            (*shared_cb)(rc->status, {});
            return;
        }
        std::vector<uint8_t> res(bytes, 0);
        if (plan == 'P') {
            xor_bytes(res.data(), rc->p.data(), bytes);
            for (auto &kv : rc->data)
                xor_bytes(res.data(), kv.second.data(), bytes);
        } else if (plan == 'Q') {
            std::vector<uint8_t> acc(bytes, 0);
            for (auto &kv : rc->data)
                gf256::accumulate(acc.data(), kv.second.data(), bytes,
                                  kv.first);
            uint8_t coeff = gf256::exp2(255u - (u % 255u));
            for (size_t i = 0; i < bytes; ++i)
                res[i] = gf256::mul(
                    coeff, static_cast<uint8_t>(rc->q[i] ^ acc[i]));
        } else {
            uint32_t x = std::min(missing[0], missing[1]);
            uint32_t y = std::max(missing[0], missing[1]);
            std::vector<uint8_t> pp = rc->p;
            std::vector<uint8_t> qq = rc->q;
            for (auto &kv : rc->data) {
                xor_bytes(pp.data(), kv.second.data(), bytes);
                gf256::accumulate(qq.data(), kv.second.data(), bytes,
                                  kv.first);
            }
            std::vector<uint8_t> dx(bytes), dy(bytes);
            gf256::solve_two(dx.data(), dy.data(), pp.data(), qq.data(),
                             bytes, x, y);
            res = u == x ? std::move(dx) : std::move(dy);
        }
        uint64_t crc_off = stripe * su * static_cast<uint64_t>(units) +
                           static_cast<uint64_t>(u) * su + o;
        if (!crc_range_ok(zone, crc_off, res.data(), n)) {
            ++stats_.crc_mismatches;
            (*shared_cb)(Status(StatusCode::kCorruption,
                                "reconstructed data failed checksum"),
                         {});
            return;
        }
        (*shared_cb)(Status::ok(), std::move(res));
    };
    auto submit_read =
        [this, zone, row0, n, rc, complete](
            uint32_t d, std::function<void(std::vector<uint8_t>)> sink) {
            ++rc->pending;
            IoRequest req = IoRequest::read(dev_row_lba(zone, row0), n);
            req.trace_stage = "eng.reconstruct_read";
            req.cause = obs::Cause::kParity;
            chain_submit(d, phys_zone(zone), std::move(req),
                         [this, d, rc, sink = std::move(sink),
                          complete](IoResult r) {
                             if (!r.status.is_ok()) {
                                 escalate_dev_error(d, r.status);
                                 if (rc->status.is_ok())
                                     rc->status = r.status;
                             } else {
                                 sink(std::move(r.data));
                             }
                             if (--rc->pending == 0)
                                 complete();
                         });
        };
    for (uint32_t v : have)
        submit_read(chunk_dev(zone, stripe, v),
                    [rc, v](std::vector<uint8_t> d) {
                        rc->data[v] = std::move(d);
                    });
    if (plan == 'P' || plan == '2')
        submit_read(static_cast<uint32_t>(pd),
                    [rc](std::vector<uint8_t> d) { rc->p = std::move(d); });
    if (plan == 'Q' || plan == '2')
        submit_read(static_cast<uint32_t>(qd),
                    [rc](std::vector<uint8_t> d) { rc->q = std::move(d); });
}

// ---------------------------------------------------------------------
// Failure management / observability
// ---------------------------------------------------------------------

void
ZonedEngine::mark_device_failed(uint32_t dev)
{
    if (dev >= num_devices() || failed_devs_[dev])
        return;
    failed_devs_[dev] = true;
    ++nfailed_;
    LOG_WARN("%s: member %u marked failed (%u failed, tolerance %u)",
             metric_prefix().c_str(), dev, nfailed_, fault_tolerance());
    maybe_start_auto_rebuild(dev);
}

int
ZonedEngine::failed_device() const
{
    for (uint32_t d = 0; d < num_devices(); ++d)
        if (failed_devs_[d])
            return static_cast<int>(d);
    return -1;
}

void
ZonedEngine::link_stats_hook(obs::MetricsRegistry &reg)
{
    obs::link_stats(reg, metric_prefix(), stats_);
}

bool
ZonedEngine::crc_range_ok(uint32_t zone, uint64_t off,
                          const uint8_t *bytes, uint32_t nsectors) const
{
    if (!store_data_)
        return true;
    const EZone &z = zones_[zone];
    if (z.crcs.empty())
        return true;
    for (uint32_t i = 0; i < nsectors; ++i) {
        if (!z.crc_valid[off + i])
            continue;
        if (crc32c(bytes + static_cast<size_t>(i) * kSectorSize,
                   kSectorSize) != z.crcs[off + i])
            return false;
    }
    return true;
}

} // namespace raizn
