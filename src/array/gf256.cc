#include "array/gf256.h"

namespace raizn::gf256 {

namespace {

struct Tables {
    uint8_t exp[512]; ///< doubled so exp[a+b] needs no mod
    uint8_t log[256];

    Tables()
    {
        uint16_t x = 1;
        for (unsigned i = 0; i < 255; ++i) {
            exp[i] = static_cast<uint8_t>(x);
            log[x] = static_cast<uint8_t>(i);
            x <<= 1;
            if (x & 0x100)
                x ^= 0x11d;
        }
        for (unsigned i = 255; i < 512; ++i)
            exp[i] = exp[i - 255];
        log[0] = 0; // never consulted for 0
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // namespace

uint8_t
mul(uint8_t a, uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

uint8_t
inv(uint8_t a)
{
    const Tables &t = tables();
    return t.exp[255 - t.log[a]];
}

uint8_t
exp2(unsigned e)
{
    return tables().exp[e % 255];
}

void
accumulate(uint8_t *acc, const uint8_t *src, size_t len,
           unsigned coeff_exp)
{
    const Tables &t = tables();
    unsigned ce = coeff_exp % 255;
    for (size_t i = 0; i < len; ++i) {
        uint8_t s = src[i];
        if (s != 0)
            acc[i] ^= t.exp[t.log[s] + ce];
    }
}

void
solve_two(uint8_t *dx, uint8_t *dy, const uint8_t *p, const uint8_t *q,
          size_t len, unsigned x, unsigned y)
{
    // With P' = Dx ^ Dy and Q' = g^x*Dx ^ g^y*Dy:
    //   Dx = (g^(y-x) * P' ^ g^(-x) * Q') / (g^(y-x) ^ 1)
    //   Dy = P' ^ Dx
    uint8_t gyx = exp2(255 + y - x);
    uint8_t gnx = exp2(255 - (x % 255));
    uint8_t denom_inv = inv(static_cast<uint8_t>(gyx ^ 1));
    for (size_t i = 0; i < len; ++i) {
        uint8_t vx = mul(denom_inv, static_cast<uint8_t>(
                                        mul(gyx, p[i]) ^ mul(gnx, q[i])));
        dx[i] = vx;
        dy[i] = p[i] ^ vx;
    }
}

} // namespace raizn::gf256
